"""CSR DM stacks: the union sparsity pattern, held once, shared by all kernels.

A :class:`SparseDMStack` is the storage + kernel layer under
:class:`~repro.core.batch.ReferenceStack`.  It lays the K reference
disaggregation matrices out over the *union* sparsity pattern of their
entries -- ``(entry_rows, entry_cols)`` in CSR (row-major) order with
``indptr`` over source rows -- and provides the four Eq. 14-17 kernels
the batch engine runs per fit:

* ``blend``        -- Eq. 14 numerator, ``W @ values`` over the union
  entries, returning a dense ``(n_attrs, nnz)`` matrix;
* ``row_sums``     -- per-source-row sums of a blended entry matrix
  (the Eq. 16 denominators under the ``row-sums`` policy);
* ``scale_rows_inplace`` -- the Eq. 16 volume-preserving rescale,
  applied in place and in bounded chunks so no ``(n_attrs, nnz)``
  gather temporary is ever materialised;
* ``reaggregate``  -- Eq. 17 column sums onto the target partition.

Three storage modes cover the density spectrum:

``"sparse"``
    General case: the per-reference values live in one SciPy CSR matrix
    of shape ``(k, nnz)`` whose columns are union entry positions.
    Blending is a sparse-dense product; memory is O(stored entries).
``"aligned"``
    Every reference has exactly the union pattern (the common case for
    synthetic producers like :mod:`repro.synth.bigalign`, where all
    crosswalks share one support).  The stack then holds per-reference
    value rows as *views of the reference matrices' own data arrays* --
    zero copies -- and blends by accumulation.
``"dense"``
    A materialised ``(k, nnz)`` matrix blended through BLAS.  Chosen
    automatically when the stored density exceeds
    :data:`DENSE_DENSITY_THRESHOLD` (above ~0.5 the CSR index overhead
    costs more than the zeros), or forced via ``REPRO_FORCE_DENSE`` /
    the ``--dense-fallback`` CLI flag so operators can bisect
    sparse-kernel regressions.

All kernels are mode-agnostic in their contracts and match the dense
oracle (``W @ dense_values`` etc.) to float reassociation noise; the
property suite in ``tests/test_sparse_stack.py`` pins 1e-12.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray
from scipy import sparse

from repro.errors import ShapeMismatchError, ValidationError
from repro.obs.trace import incr as _obs_incr, span as _span

__all__ = [
    "DENSE_DENSITY_THRESHOLD",
    "FORCE_DENSE_ENV",
    "EntrySlice",
    "SparseDMStack",
    "dense_forced",
]

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]

#: Stored density above which the dense representation is both smaller
#: (no index arrays) and faster (BLAS blend) than CSR.  See
#: ``docs/batching.md``.
DENSE_DENSITY_THRESHOLD = 0.5

#: Environment variable forcing every new stack onto the dense path --
#: the production bisect switch behind ``geoalign-repro align
#: --dense-fallback``.
FORCE_DENSE_ENV = "REPRO_FORCE_DENSE"

#: Entry-count ceiling per rescale chunk; bounds the gather temporary
#: of :meth:`SparseDMStack.scale_rows_inplace` to a few megabytes.
_RESCALE_CHUNK_FLOATS = 1 << 20

_MODES = ("sparse", "aligned", "dense")


def dense_forced() -> bool:
    """Whether ``REPRO_FORCE_DENSE`` requests the dense fallback path."""
    value = os.environ.get(FORCE_DENSE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no")


@dataclass(frozen=True)
class EntrySlice:
    """Columns of the reference value stack for one entry subset.

    The shard engine ships these to disaggregation workers instead of
    unconditional dense blocks: for a sparse-mode stack the slice is
    CSR triplets (data / local column indices / per-reference indptr),
    so transfer volume scales with the *stored* entries of the shard,
    not ``k * n_entries``.  ``blend`` reproduces the owning stack's
    blend kernel on the slice (same per-entry accumulation order, so
    sharded and monolithic blends agree bitwise).
    """

    n_references: int
    n_entries: int
    dense: FloatArray | None = None
    data: FloatArray | None = None
    indices: NDArray[Any] | None = None
    indptr: NDArray[Any] | None = None

    def blend(self, weights: FloatArray) -> FloatArray:
        """Dense ``(n_attrs, n_entries)`` blend of this slice."""
        _obs_incr("kernel.slice_blends")
        if self.dense is not None:
            result: FloatArray = weights @ self.dense
            return result
        matrix = sparse.csr_matrix(
            (self.data, self.indices, self.indptr),
            shape=(self.n_references, self.n_entries),
        )
        result = np.asarray(weights @ matrix, dtype=float)
        return result


def _as_sorted_csr(matrix: Any) -> Any:
    """The matrix as canonical CSR, copying only when normalisation is
    actually needed (duplicate or unsorted entries)."""
    csr = sparse.csr_matrix(matrix, dtype=float)
    if not csr.has_canonical_format:
        csr = csr.copy()
        csr.sum_duplicates()
        csr.sort_indices()
    return csr


class SparseDMStack:
    """K reference DMs over one union sparsity pattern, with kernels.

    Build through :meth:`from_matrices` (union construction, automatic
    mode selection) or :meth:`from_stored` (store loader: adopt arrays
    verbatim).  ``entry_rows``/``entry_cols`` are the union entries in
    CSR order; ``indptr`` the per-source-row pointers into them.
    """

    __slots__ = (
        "n_sources",
        "n_targets",
        "n_references",
        "mode",
        "indptr",
        "entry_rows",
        "entry_cols",
        "stored_nnz",
        "ref_matrix",
        "_rows",
        "_dense",
        "_nonempty_rows",
        "_nonempty_starts",
    )

    def __init__(
        self,
        n_sources: int,
        n_targets: int,
        indptr: IntArray,
        entry_cols: NDArray[Any],
        mode: str,
        ref_matrix: Any | None = None,
        rows: list[FloatArray] | None = None,
        dense: FloatArray | None = None,
        stored_nnz: int | None = None,
    ) -> None:
        if mode not in _MODES:
            raise ValidationError(
                f"stack mode must be one of {_MODES}, got {mode!r}"
            )
        nnz = int(len(entry_cols))
        if len(indptr) != n_sources + 1 or int(indptr[-1]) != nnz:
            raise ShapeMismatchError(
                f"indptr must have {n_sources + 1} entries ending at "
                f"{nnz}, got {len(indptr)} ending at "
                f"{int(indptr[-1]) if len(indptr) else 'nothing'}"
            )
        self.n_sources = n_sources
        self.n_targets = n_targets
        self.mode = mode
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.entry_cols = entry_cols
        counts = np.diff(self.indptr)
        self.entry_rows = np.repeat(
            np.arange(n_sources, dtype=np.int64), counts
        )
        nonempty = counts > 0
        self._nonempty_rows = np.flatnonzero(nonempty)
        self._nonempty_starts = self.indptr[:-1][nonempty]
        self.ref_matrix = None
        self._rows = None
        self._dense = None
        if mode == "sparse":
            if ref_matrix is None or ref_matrix.shape[1] != nnz:
                raise ShapeMismatchError(
                    "sparse mode needs a (k, nnz) reference value matrix"
                )
            self.ref_matrix = ref_matrix
            self.n_references = int(ref_matrix.shape[0])
            self.stored_nnz = int(ref_matrix.nnz)
        elif mode == "aligned":
            if not rows or any(len(row) != nnz for row in rows):
                raise ShapeMismatchError(
                    "aligned mode needs per-reference (nnz,) value rows"
                )
            self._rows = rows
            self.n_references = len(rows)
            self.stored_nnz = self.n_references * nnz
        else:
            if dense is None or dense.shape[1] != nnz:
                raise ShapeMismatchError(
                    "dense mode needs a (k, nnz) value matrix"
                )
            self._dense = dense
            self.n_references = int(dense.shape[0])
            self.stored_nnz = (
                int(stored_nnz)
                if stored_nnz is not None
                else int(np.count_nonzero(dense))
            )

    # -- construction ---------------------------------------------------
    @classmethod
    def from_matrices(
        cls,
        matrices: Sequence[Any],
        n_sources: int,
        n_targets: int,
        dense: bool | None = None,
    ) -> "SparseDMStack":
        """Union-pattern construction over K ``(m, t)`` sparse matrices.

        ``dense=None`` selects the mode automatically: the dense
        fallback when :func:`dense_forced` or the stored density
        exceeds :data:`DENSE_DENSITY_THRESHOLD`, the zero-copy aligned
        mode when every matrix already has the union pattern, CSR
        otherwise.  ``dense=True``/``False`` force / forbid the dense
        path (tests and the CLI bisect flag).
        """
        if not matrices:
            raise ValidationError("a DM stack needs at least one matrix")
        mats = [_as_sorted_csr(matrix) for matrix in matrices]
        for mat in mats:
            if mat.shape != (n_sources, n_targets):
                raise ShapeMismatchError(
                    f"stack matrices must all be ({n_sources}, "
                    f"{n_targets}), got {mat.shape}"
                )
        if dense is None and dense_forced():
            dense = True
        first = mats[0]
        aligned = all(
            mat.nnz == first.nnz
            and np.array_equal(mat.indptr, first.indptr)
            and np.array_equal(mat.indices, first.indices)
            for mat in mats[1:]
        )
        with _span(
            "stack.union",
            k=len(mats),
            aligned=aligned,
            stored_nnz=int(sum(mat.nnz for mat in mats)),
        ):
            if aligned:
                indptr = first.indptr.astype(np.int64)
                entry_cols = first.indices
                rows = [np.asarray(mat.data, dtype=float) for mat in mats]
                if dense:
                    return cls(
                        n_sources,
                        n_targets,
                        indptr,
                        entry_cols,
                        "dense",
                        dense=np.vstack(rows),
                        stored_nnz=len(rows) * first.nnz,
                    )
                return cls(
                    n_sources, n_targets, indptr, entry_cols, "aligned",
                    rows=rows,
                )
            return cls._from_unaligned(
                mats, n_sources, n_targets, dense=dense
            )

    @classmethod
    def _from_unaligned(
        cls,
        mats: list[Any],
        n_sources: int,
        n_targets: int,
        dense: bool | None,
    ) -> "SparseDMStack":
        """General union build: int64 ``row * t + col`` keys, one sort."""
        per_ref_keys: list[IntArray] = []
        for mat in mats:
            rows = np.repeat(
                np.arange(n_sources, dtype=np.int64), np.diff(mat.indptr)
            )
            per_ref_keys.append(
                rows * np.int64(n_targets) + mat.indices.astype(np.int64)
            )
        union_keys = np.unique(np.concatenate(per_ref_keys))
        nnz = int(len(union_keys))
        entry_rows = union_keys // np.int64(n_targets)
        entry_cols = union_keys % np.int64(n_targets)
        indptr = np.zeros(n_sources + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(entry_rows, minlength=n_sources), out=indptr[1:]
        )
        stored = int(sum(mat.nnz for mat in mats))
        k = len(mats)
        density = stored / (k * nnz) if nnz else 1.0
        if dense or (dense is None and density > DENSE_DENSITY_THRESHOLD):
            values = np.zeros((k, nnz))
            for i, (mat, keys) in enumerate(zip(mats, per_ref_keys)):
                values[i, np.searchsorted(union_keys, keys)] = mat.data
            return cls(
                n_sources, n_targets, indptr, entry_cols, "dense",
                dense=values, stored_nnz=stored,
            )
        positions = np.concatenate(
            [np.searchsorted(union_keys, keys) for keys in per_ref_keys]
        )
        ref_indptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum([mat.nnz for mat in mats], out=ref_indptr[1:])
        ref_matrix = sparse.csr_matrix(
            (
                np.concatenate(
                    [np.asarray(mat.data, dtype=float) for mat in mats]
                ),
                positions,
                ref_indptr,
            ),
            shape=(k, nnz),
        )
        return cls(
            n_sources, n_targets, indptr, entry_cols, "sparse",
            ref_matrix=ref_matrix,
        )

    @classmethod
    def from_stored(
        cls,
        n_sources: int,
        n_targets: int,
        entry_rows: NDArray[Any],
        entry_cols: NDArray[Any],
        mode: str,
        values: FloatArray | None = None,
        data: FloatArray | None = None,
        indices: NDArray[Any] | None = None,
        ref_indptr: NDArray[Any] | None = None,
    ) -> "SparseDMStack":
        """Adopt stored arrays verbatim (the store loader's entry point).

        The mode decides the payload: ``values`` for dense/aligned,
        CSR triplets for sparse.  Restoring the saved mode keeps a
        loaded model's blend arithmetic bitwise identical to the model
        that was saved.
        """
        nnz = int(len(entry_cols))
        indptr = np.zeros(n_sources + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(
                np.asarray(entry_rows, dtype=np.int64), minlength=n_sources
            ),
            out=indptr[1:],
        )
        if mode == "sparse":
            if data is None or indices is None or ref_indptr is None:
                raise ValidationError(
                    "sparse stored stacks need data/indices/indptr arrays"
                )
            ref_matrix = sparse.csr_matrix(
                (
                    np.asarray(data, dtype=float),
                    indices,
                    np.asarray(ref_indptr, dtype=np.int64),
                ),
                shape=(len(ref_indptr) - 1, nnz),
            )
            return cls(
                n_sources, n_targets, indptr, entry_cols, "sparse",
                ref_matrix=ref_matrix,
            )
        if values is None:
            raise ValidationError(
                "dense/aligned stored stacks need a values matrix"
            )
        if mode == "aligned":
            return cls(
                n_sources, n_targets, indptr, entry_cols, "aligned",
                rows=list(values),
            )
        return cls(
            n_sources, n_targets, indptr, entry_cols, "dense", dense=values,
        )

    # -- shape / accounting --------------------------------------------
    @property
    def nnz(self) -> int:
        """Entries in the union sparsity pattern."""
        return int(len(self.entry_cols))

    @property
    def density(self) -> float:
        """Stored entries over ``k * nnz`` (1.0 for aligned stacks)."""
        capacity = self.n_references * self.nnz
        return self.stored_nnz / capacity if capacity else 1.0

    @property
    def resident_bytes(self) -> int:
        """Bytes held by the stack's arrays (union indices + values)."""
        total = (
            int(self.indptr.nbytes)
            + int(self.entry_rows.nbytes)
            + int(np.asarray(self.entry_cols).nbytes)
        )
        if self.ref_matrix is not None:
            total += int(
                self.ref_matrix.data.nbytes
                + self.ref_matrix.indices.nbytes
                + self.ref_matrix.indptr.nbytes
            )
        if self._rows is not None:
            total += int(sum(row.nbytes for row in self._rows))
        if self._dense is not None:
            total += int(self._dense.nbytes)
        return total

    @property
    def values(self) -> FloatArray:
        """Dense ``(k, nnz)`` oracle view of the stack (cached)."""
        if self._dense is None:
            if self._rows is not None:
                self._dense = np.vstack(self._rows)
            else:
                assert self.ref_matrix is not None
                self._dense = np.asarray(
                    self.ref_matrix.toarray(), dtype=float
                )
        return self._dense

    # -- kernels --------------------------------------------------------
    def blend(self, weights: FloatArray) -> FloatArray:
        """Eq. 14 numerator: ``(n, k) @ (k, nnz)`` over union entries."""
        with _span(
            "kernel.blend", n=int(weights.shape[0]), mode=self.mode
        ):
            if self.mode == "dense":
                assert self._dense is not None
                result: FloatArray = weights @ self._dense
                return result
            if self.mode == "aligned":
                assert self._rows is not None
                out = np.multiply.outer(weights[:, 0], self._rows[0])
                if len(self._rows) > 1:
                    scratch = np.empty_like(out)
                    for i in range(1, len(self._rows)):
                        np.multiply.outer(
                            weights[:, i], self._rows[i], out=scratch
                        )
                        out += scratch
                return out
            result = np.asarray(weights @ self.ref_matrix, dtype=float)
            return result

    def row_sums(self, entry_values: FloatArray) -> FloatArray:
        """Per-source-row sums of ``(n, nnz)`` entry-value matrices."""
        with _span("kernel.row_sums", n=int(entry_values.shape[0])):
            out = np.zeros((entry_values.shape[0], self.n_sources))
            if self._nonempty_starts.size:
                out[:, self._nonempty_rows] = np.add.reduceat(
                    entry_values, self._nonempty_starts, axis=1
                )
            return out

    def scale_rows_inplace(
        self, entry_values: FloatArray, factors: FloatArray
    ) -> FloatArray:
        """Eq. 16 in place: ``entry_values[:, e] *= factors[:, row(e)]``.

        Chunked over entries so the factor gather never materialises a
        full ``(n, nnz)`` temporary; returns its (mutated) input.
        """
        n = max(int(entry_values.shape[0]), 1)
        chunk = max(_RESCALE_CHUNK_FLOATS // n, 1024)
        with _span(
            "kernel.rescale", n=int(entry_values.shape[0]), chunk=chunk
        ):
            for lo in range(0, self.nnz, chunk):
                hi = min(lo + chunk, self.nnz)
                entry_values[:, lo:hi] *= factors[  # repro-lint: allow[ndarray-mutation] in-place is this kernel's contract (the name says so); the batch engine owns the buffer
                    :, self.entry_rows[lo:hi]
                ]
            return entry_values

    def reaggregate(self, entry_values: FloatArray) -> FloatArray:
        """Eq. 17: ``(n, nnz)`` entry values to ``(n, t)`` column sums."""
        with _span(
            "kernel.reaggregate", n=int(entry_values.shape[0])
        ):
            out = np.empty((entry_values.shape[0], self.n_targets))
            for j in range(entry_values.shape[0]):
                out[j] = np.bincount(
                    self.entry_cols,
                    weights=entry_values[j],
                    minlength=self.n_targets,
                )
            return out

    def entry_mass(self) -> FloatArray:
        """Per-union-entry value mass summed over references."""
        if self._dense is not None:
            result: FloatArray = self._dense.sum(axis=0)
            return result
        if self._rows is not None:
            out = self._rows[0].copy()
            for row in self._rows[1:]:
                out += row
            return out
        assert self.ref_matrix is not None
        return np.bincount(
            self.ref_matrix.indices,
            weights=self.ref_matrix.data,
            minlength=self.nnz,
        )

    # -- slicing / export ----------------------------------------------
    def entry_slice(self, entries: IntArray) -> EntrySlice:
        """The value stack restricted to an ascending entry subset.

        Dense/aligned stacks hand back a dense block; sparse stacks a
        CSR triplet slice with columns renumbered into the subset.
        """
        k = self.n_references
        if self._dense is not None:
            return EntrySlice(k, len(entries), dense=self._dense[:, entries])
        if self._rows is not None:
            block = np.empty((k, len(entries)))
            for i, row in enumerate(self._rows):
                block[i] = row[entries]
            return EntrySlice(k, len(entries), dense=block)
        assert self.ref_matrix is not None
        matrix = self.ref_matrix
        if len(entries) == 0:
            return EntrySlice(
                k,
                0,
                data=np.empty(0),
                indices=np.empty(0, dtype=np.int64),
                indptr=np.zeros(k + 1, dtype=np.int64),
            )
        lookup = np.searchsorted(entries, matrix.indices)
        lookup[lookup == len(entries)] = len(entries) - 1
        keep = entries[lookup] == matrix.indices
        stored_rows = np.repeat(
            np.arange(k, dtype=np.int64), np.diff(matrix.indptr)
        )
        indptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(stored_rows[keep], minlength=k), out=indptr[1:]
        )
        return EntrySlice(
            k,
            len(entries),
            data=matrix.data[keep],
            indices=lookup[keep],
            indptr=indptr,
        )

    def ref_entry_values(self, i: int) -> tuple[FloatArray, IntArray]:
        """Reference ``i``'s stored values and their union positions."""
        if self._rows is not None:
            return self._rows[i], np.arange(self.nnz, dtype=np.int64)
        if self._dense is not None:
            return self._dense[i], np.arange(self.nnz, dtype=np.int64)
        assert self.ref_matrix is not None
        lo, hi = self.ref_matrix.indptr[i], self.ref_matrix.indptr[i + 1]
        return (
            np.asarray(self.ref_matrix.data[lo:hi], dtype=float),
            self.ref_matrix.indices[lo:hi].astype(np.int64),
        )

    def csr_arrays(self) -> tuple[FloatArray, IntArray, IntArray]:
        """CSR triplets of the reference value stack (store export)."""
        if self.ref_matrix is not None:
            return (
                np.asarray(self.ref_matrix.data, dtype=float),
                self.ref_matrix.indices.astype(np.int64),
                self.ref_matrix.indptr.astype(np.int64),
            )
        values = self.values
        k, nnz = values.shape
        return (
            np.ascontiguousarray(values.reshape(-1)),
            np.tile(np.arange(nnz, dtype=np.int64), k),
            np.arange(0, (k + 1) * nnz, nnz, dtype=np.int64),
        )

    def __repr__(self) -> str:
        return (
            f"SparseDMStack(mode={self.mode!r}, k={self.n_references}, "
            f"m={self.n_sources}, t={self.n_targets}, nnz={self.nnz}, "
            f"density={self.density:.3f})"
        )
