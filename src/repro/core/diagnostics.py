"""Diagnostics for fitted crosswalks: weight stability and leverage.

The paper's practical pitch is "hand GeoAlign all available references
and let the weights sort them out" (§4.4.2).  For a practitioner that
raises an immediate question the paper leaves to inspection: *how
trustworthy are the learned weights?*  This module answers it with a
bootstrap over source units -- the natural resampling unit, since
Eq. 15 treats source units as observations:

* :func:`bootstrap_weights` refits the simplex regression on resampled
  source units and reports per-reference weight distributions and
  selection frequencies;
* :func:`weight_stability_report` renders the result for humans.

High-variance weights with stable *predictions* are expected for
mutually redundant references (the paper's ~96 %-correlated USPS pair
trades weight freely), so the bootstrap also records the dispersion of
the fitted values themselves.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.errors import ValidationError
from repro.core.solver import simplex_lstsq
from repro.utils.arrays import as_nonnegative_vector
from repro.utils.rng import RngLike, as_rng

if TYPE_CHECKING:
    from repro.core.reference import Reference

FloatArray = NDArray[np.float64]

#: Weights below this count as "not selected" for frequency purposes.
SELECTION_THRESHOLD = 0.01


def weight_entropy(weights: ArrayLike) -> float:
    """Shannon entropy (nats) of a simplex weight vector.

    Zero when all mass sits on one reference (maximal degeneracy),
    ``log(k)`` when spread uniformly over ``k`` references.  Negative
    entries are clipped and the vector renormalised, so near-feasible
    solver output (tiny negative round-off) is handled gracefully.
    """
    w = np.clip(np.asarray(weights, dtype=float).ravel(), 0.0, None)
    total = float(w.sum())
    if total <= 0.0:
        raise ValidationError("weight_entropy needs positive total mass")
    p = w / total
    positive = p[p > 0.0]
    return float(-(positive * np.log(positive)).sum())


def effective_references(weights: ArrayLike) -> float:
    """Effective number of references: ``exp(entropy)`` of the weights.

    The perplexity of the weight distribution — 1.0 means a single
    reference carries everything (Eq. 15 solution fully degenerate),
    ``k`` means all ``k`` references contribute equally.  The health
    monitors gauge this after every fit as the weight-degeneracy
    signal.
    """
    return float(np.exp(weight_entropy(weights)))


def simplex_violation(weights: ArrayLike) -> float:
    """Worst violation of the Eq. 15 simplex constraints.

    ``max(|sum(w) - 1|, max(-w, 0))`` over the weight vector (or each
    row of a weight matrix): zero iff the weights are exactly feasible.
    A correct solver keeps this at float-rounding level (~1e-15); a
    drifting one is a silent correctness regression the paper's
    guarantees do not survive.
    """
    w = np.atleast_2d(np.asarray(weights, dtype=float))
    sum_violation = float(np.abs(w.sum(axis=1) - 1.0).max())
    negativity = float(np.clip(-w, 0.0, None).max())
    return max(sum_violation, negativity)


def gram_condition_number(gram: ArrayLike) -> float:
    """2-norm condition number of the Eq. 15 Gram matrix ``A^T A``.

    Large values mean near-collinear reference vectors: the weight
    solution is ill-determined and small data perturbations move it
    arbitrarily (the situation §4.4.2's redundant-reference discussion
    anticipates).  Returns ``inf`` for a singular Gram matrix.
    """
    g = np.asarray(gram, dtype=float)
    if g.ndim != 2 or g.shape[0] != g.shape[1]:
        raise ValidationError(
            f"gram must be a square matrix, got shape {g.shape}"
        )
    return float(np.linalg.cond(g))


def volume_residual(
    achieved_row_sums: ArrayLike, objective_source: ArrayLike
) -> float:
    """Relative L-inf volume-preservation residual (Eq. 16).

    ``max_i |rowsum_i - a_i| / max_j a_j`` — how far the estimated
    disaggregation matrix's row sums drift from the objective's source
    aggregates, relative to the attribute's largest aggregate.  Under
    the row-rescale this is float rounding (~1e-16); anything larger
    means mass was created or destroyed in the crosswalk.  Accepts
    matched vectors or ``(n_attrs, m)`` matrices (batched form).
    """
    achieved = np.asarray(achieved_row_sums, dtype=float)
    target = np.asarray(objective_source, dtype=float)
    if achieved.shape != target.shape:
        raise ValidationError(
            f"row sums have shape {achieved.shape} but the objective "
            f"has shape {target.shape}"
        )
    scale = float(np.abs(target).max())
    if scale <= 0.0:
        raise ValidationError("objective carries no mass")
    return float(np.abs(achieved - target).max()) / scale


@dataclass
class BootstrapResult:
    """Bootstrap distribution of GeoAlign's reference weights.

    Attributes
    ----------
    reference_names:
        Column order of ``weights``.
    weights:
        ``(n_boot, k)`` array; one simplex weight vector per resample.
    point_estimate:
        Weights fitted on the full (unresampled) data.
    fit_dispersion:
        Mean over source units of the standard deviation of the fitted
        normalised values across resamples -- low dispersion with noisy
        weights flags redundant references.
    """

    reference_names: list[str]
    weights: FloatArray
    point_estimate: FloatArray
    fit_dispersion: float

    def mean(self) -> FloatArray:
        return self.weights.mean(axis=0)

    def std(self) -> FloatArray:
        return self.weights.std(axis=0)

    def quantiles(
        self, q: Sequence[float] = (0.05, 0.5, 0.95)
    ) -> FloatArray:
        """``(len(q), k)`` array of weight quantiles."""
        return np.quantile(self.weights, q, axis=0)

    def selection_frequency(
        self, threshold: float = SELECTION_THRESHOLD
    ) -> FloatArray:
        """Fraction of resamples giving each reference weight > threshold."""
        return (self.weights > threshold).mean(axis=0)


def bootstrap_weights(
    references: Iterable["Reference"],
    objective_source: ArrayLike,
    n_boot: int = 200,
    seed: RngLike = None,
    solver_method: str = "active-set",
) -> BootstrapResult:
    """Bootstrap the Eq. 15 weights over source units.

    Parameters
    ----------
    references:
        Sequence of :class:`~repro.core.reference.Reference`.
    objective_source:
        The objective attribute's source aggregates.
    n_boot:
        Number of bootstrap resamples.
    seed:
        RNG seed (any :func:`repro.utils.rng.as_rng` input).

    Returns
    -------
    BootstrapResult
    """
    references = list(references)
    if not references:
        raise ValidationError("bootstrap needs at least one reference")
    if n_boot < 1:
        raise ValidationError(f"n_boot must be positive, got {n_boot}")
    objective = as_nonnegative_vector(
        objective_source, name="objective_source"
    )
    design = np.column_stack(
        [ref.normalized_source() for ref in references]
    )
    if design.shape[0] != objective.shape[0]:
        raise ValidationError(
            "objective_source length does not match the references"
        )
    if objective.max() <= 0:
        raise ValidationError("objective_source is identically zero")
    rhs = objective / float(objective.max())

    point = simplex_lstsq(design, rhs, method=solver_method).weights
    rng = as_rng(seed)
    m = design.shape[0]
    draws = np.empty((n_boot, design.shape[1]))
    fitted = np.empty((n_boot, m))
    for b in range(n_boot):
        rows = rng.integers(0, m, size=m)
        result = simplex_lstsq(
            design[rows], rhs[rows], method=solver_method
        )
        draws[b] = result.weights
        fitted[b] = design @ result.weights
    dispersion = float(fitted.std(axis=0).mean())
    return BootstrapResult(
        reference_names=[ref.name for ref in references],
        weights=draws,
        point_estimate=point,
        fit_dispersion=dispersion,
    )


def weight_stability_report(result: BootstrapResult) -> str:
    """Human-readable summary of a :class:`BootstrapResult`."""
    lows, medians, highs = result.quantiles((0.05, 0.5, 0.95))
    freq = result.selection_frequency()
    name_width = max(len(n) for n in result.reference_names) + 2
    lines = [
        "Reference weight stability "
        f"({result.weights.shape[0]} bootstrap resamples):",
        f"{'reference':{name_width}s}{'point':>8s}{'q05':>8s}"
        f"{'median':>8s}{'q95':>8s}{'sel%':>7s}",
    ]
    order = np.argsort(-result.point_estimate)
    for idx in order:
        lines.append(
            f"{result.reference_names[idx]:{name_width}s}"
            f"{result.point_estimate[idx]:8.3f}{lows[idx]:8.3f}"
            f"{medians[idx]:8.3f}{highs[idx]:8.3f}"
            f"{100 * freq[idx]:6.0f}%"
        )
    lines.append(
        f"fitted-value dispersion: {result.fit_dispersion:.5f} "
        "(low dispersion + wide weight intervals = redundant references)"
    )
    return "\n".join(lines)
