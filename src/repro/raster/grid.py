"""Regular lattice over a rectangular universe.

A :class:`RasterGrid` owns the geometry-free bookkeeping shared by zone
rasters and density fields: cell centres, point-to-cell hashing, and the
cell <-> (row, col) <-> flat-index conversions.  Cells are half-open in
both axes so every point maps to exactly one cell.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.primitives import BoundingBox


class RasterGrid:
    """An ``ny`` x ``nx`` lattice of equal rectangular cells.

    Parameters
    ----------
    extent:
        :class:`~repro.geometry.primitives.BoundingBox` covered by the
        grid.
    nx, ny:
        Cell counts along x and y.
    """

    def __init__(self, extent, nx, ny):
        if nx <= 0 or ny <= 0:
            raise GeometryError(f"grid shape must be positive, got {nx}x{ny}")
        if extent.width <= 0 or extent.height <= 0:
            raise GeometryError("grid extent must have positive area")
        self.extent = extent
        self.nx = int(nx)
        self.ny = int(ny)
        self.cell_width = extent.width / self.nx
        self.cell_height = extent.height / self.ny

    @property
    def n_cells(self):
        return self.nx * self.ny

    @property
    def cell_area(self):
        return self.cell_width * self.cell_height

    def cell_centers(self):
        """``(n_cells, 2)`` array of cell centres in flat (row-major) order."""
        xs = self.extent.xmin + (np.arange(self.nx) + 0.5) * self.cell_width
        ys = self.extent.ymin + (np.arange(self.ny) + 0.5) * self.cell_height
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack((gx.ravel(), gy.ravel()))

    def locate_points(self, points):
        """Flat cell index per point; -1 for points outside the extent."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(
                f"points must be (m, 2), got shape {pts.shape}"
            )
        col = np.floor(
            (pts[:, 0] - self.extent.xmin) / self.cell_width
        ).astype(np.int64)
        row = np.floor(
            (pts[:, 1] - self.extent.ymin) / self.cell_height
        ).astype(np.int64)
        # Points exactly on the max edge belong to the border cell.
        col[pts[:, 0] == self.extent.xmax] = self.nx - 1
        row[pts[:, 1] == self.extent.ymax] = self.ny - 1
        flat = row * self.nx + col
        outside = (col < 0) | (col >= self.nx) | (row < 0) | (row >= self.ny)
        flat[outside] = -1
        return flat

    def cell_box(self, flat_index):
        """The :class:`BoundingBox` of one cell."""
        if not 0 <= flat_index < self.n_cells:
            raise GeometryError(
                f"cell index {flat_index} outside grid of {self.n_cells}"
            )
        row, col = divmod(int(flat_index), self.nx)
        x0 = self.extent.xmin + col * self.cell_width
        y0 = self.extent.ymin + row * self.cell_height
        return BoundingBox(
            x0, y0, x0 + self.cell_width, y0 + self.cell_height
        )

    def window_mask(self, box):
        """Boolean flat mask of cells whose centres fall inside ``box``."""
        centers = self.cell_centers()
        return (
            (centers[:, 0] >= box.xmin)
            & (centers[:, 0] <= box.xmax)
            & (centers[:, 1] >= box.ymin)
            & (centers[:, 1] <= box.ymax)
        )

    def __repr__(self):
        return (
            f"RasterGrid({self.nx}x{self.ny}, cell="
            f"{self.cell_width:.4g}x{self.cell_height:.4g})"
        )
