"""Raster (lattice) backend for country-scale unit systems.

At United States scale (~30k zip codes x ~3.1k counties) exact vector
overlay in pure Python is avoidably slow.  This backend discretises the
universe into a fine lattice; every unit is a set of whole cells, so
overlap between two unit systems sharing one grid is an exact integer
tabulation (a vectorised group-by), and point location is O(1) per point.

This mirrors standard GIS practice (dasymetric rasters) and preserves the
algorithmic content: GeoAlign only ever sees labels, vectors and DMs.
Agreement between the raster and vector backends on the same geography is
covered by the test suite.
"""

from repro.raster.grid import RasterGrid
from repro.raster.zones import RasterUnitSystem, voronoi_zone_raster

__all__ = ["RasterGrid", "RasterUnitSystem", "voronoi_zone_raster"]
