"""Zone rasters: unit systems whose units are sets of lattice cells.

``voronoi_zone_raster`` labels every cell of a grid with its nearest seed
(a discrete Voronoi partition -- how the synthetic geography carves zip
codes and counties at country scale).  :class:`RasterUnitSystem` then
exposes the standard :class:`~repro.partitions.system.UnitSystem`
interface: overlap between two zone rasters over the *same* grid is an
exact tabulation of joint cell labels.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.spatial import cKDTree

from repro.errors import PartitionError, ShapeMismatchError
from repro.partitions.system import UnitSystem


def voronoi_zone_raster(grid, seeds, active_mask=None):
    """Nearest-seed label per grid cell.

    Parameters
    ----------
    grid:
        :class:`~repro.raster.grid.RasterGrid`.
    seeds:
        ``(k, 2)`` seed points.
    active_mask:
        Optional boolean flat mask; cells outside it get label -1 (cells
        outside the universe window, e.g. outside a state subset).

    Returns
    -------
    numpy.ndarray
        Flat ``int64`` array of length ``grid.n_cells`` with values in
        ``[-1, k)``.

    Notes
    -----
    Bulk nearest-neighbour search uses :class:`scipy.spatial.cKDTree`
    (scipy is a declared dependency).  The from-scratch equivalent,
    :func:`repro.geometry.voronoi.nearest_seed_labels`, is used by tests
    to cross-validate this fast path.
    """
    seeds = np.asarray(seeds, dtype=float)
    if seeds.ndim != 2 or seeds.shape[1] != 2:
        raise PartitionError(f"seeds must be (k, 2), got {seeds.shape}")
    centers = grid.cell_centers()
    labels = np.full(grid.n_cells, -1, dtype=np.int64)
    if active_mask is None:
        query = centers
        where = slice(None)
    else:
        active_mask = np.asarray(active_mask, dtype=bool)
        if active_mask.shape != (grid.n_cells,):
            raise ShapeMismatchError(
                f"active_mask must be flat of length {grid.n_cells}"
            )
        query = centers[active_mask]
        where = active_mask
    tree = cKDTree(seeds)
    _, nearest = tree.query(query, k=1)
    labels[where] = nearest.astype(np.int64)
    return labels


class RasterUnitSystem(UnitSystem):
    """Unit system backed by a flat per-cell zone label array.

    Parameters
    ----------
    labels:
        Unit names; unit ``i`` owns the cells where ``zone_of_cell == i``.
    grid:
        The shared :class:`~repro.raster.grid.RasterGrid`.
    zone_of_cell:
        Flat ``int`` array of length ``grid.n_cells``; -1 marks cells
        outside the universe.  Every unit must own at least one cell.
    """

    def __init__(self, labels, grid, zone_of_cell):
        super().__init__(labels)
        zone_of_cell = np.asarray(zone_of_cell)
        if zone_of_cell.shape != (grid.n_cells,):
            raise ShapeMismatchError(
                f"zone_of_cell must be flat of length {grid.n_cells}, got "
                f"{zone_of_cell.shape}"
            )
        if zone_of_cell.max(initial=-1) >= len(self.labels):
            raise PartitionError(
                "zone_of_cell references a unit beyond the label list"
            )
        counts = np.bincount(
            zone_of_cell[zone_of_cell >= 0], minlength=len(self.labels)
        )
        empty = np.flatnonzero(counts == 0)
        if len(empty):
            raise PartitionError(
                f"{len(empty)} units own no raster cells (first: "
                f"{self.labels[empty[0]]!r}); refine the grid or drop them"
            )
        self.grid = grid
        self.zone_of_cell = zone_of_cell.astype(np.int64)
        self._cell_counts = counts

    @classmethod
    def from_seeds(cls, labels, grid, seeds, active_mask=None):
        """Discrete Voronoi unit system around ``seeds``."""
        zones = voronoi_zone_raster(grid, seeds, active_mask=active_mask)
        return cls(labels, grid, zones)

    def cell_counts(self):
        """Number of cells per unit."""
        return self._cell_counts.copy()

    def _content_fingerprint(self):
        from repro.cache import combine_fingerprints, fingerprint_array

        extent = self.grid.extent
        return combine_fingerprints(
            "zone-raster",
            repr((extent.xmin, extent.ymin, extent.xmax, extent.ymax)),
            repr((self.grid.nx, self.grid.ny)),
            fingerprint_array(self.zone_of_cell),
        )

    def measures(self):
        """Unit areas: cell count times cell area."""
        return self._cell_counts * self.grid.cell_area

    def overlap_pairs(self, other):
        """Exact tabulation of joint (mine, theirs) cell labels."""
        if not isinstance(other, RasterUnitSystem):
            raise ShapeMismatchError(
                "can only overlay RasterUnitSystem with RasterUnitSystem, "
                f"got {type(other).__name__}"
            )
        if other.grid is not self.grid and (
            other.grid.nx != self.grid.nx
            or other.grid.ny != self.grid.ny
            or other.grid.extent != self.grid.extent
        ):
            raise ShapeMismatchError(
                "raster overlay requires both systems to share one grid"
            )
        mine = self.zone_of_cell
        theirs = other.zone_of_cell
        both = (mine >= 0) & (theirs >= 0)
        joint = mine[both] * np.int64(len(other)) + theirs[both]
        codes, counts = np.unique(joint, return_counts=True)
        src_idx = codes // len(other)
        tgt_idx = codes % len(other)
        return (
            src_idx.astype(np.int64),
            tgt_idx.astype(np.int64),
            counts.astype(float) * self.grid.cell_area,
        )

    def joint_tabulate(self, other, cell_values):
        """Sum ``cell_values`` over each (mine, theirs) intersection.

        The workhorse for turning per-cell attribute mass into a
        disaggregation matrix: returns ``(src_idx, tgt_idx, totals)``
        triplets over intersections with positive total.
        """
        cell_values = np.asarray(cell_values, dtype=float)
        if cell_values.shape != (self.grid.n_cells,):
            raise ShapeMismatchError(
                f"cell_values must be flat of length {self.grid.n_cells}"
            )
        mine = self.zone_of_cell
        theirs = other.zone_of_cell
        both = (mine >= 0) & (theirs >= 0) & (cell_values != 0.0)  # repro-lint: allow[float-eq] exact zeros contribute no mass; skipping them is a pure optimisation
        joint = mine[both] * np.int64(len(other)) + theirs[both]
        mat = sparse.coo_matrix(
            (
                cell_values[both],
                (joint // len(other), joint % len(other)),
            ),
            shape=(len(self), len(other)),
        ).tocsr()
        mat.eliminate_zeros()
        coo = mat.tocoo()
        return (
            coo.row.astype(np.int64),
            coo.col.astype(np.int64),
            coo.data.astype(float),
        )

    def aggregate_cells(self, cell_values):
        """Sum per-cell values to units (cells outside the universe drop)."""
        cell_values = np.asarray(cell_values, dtype=float)
        inside = self.zone_of_cell >= 0
        return np.bincount(
            self.zone_of_cell[inside],
            weights=cell_values[inside],
            minlength=len(self),
        )

    def locate_points(self, points):
        """Unit index per point via cell hashing (-1 outside)."""
        cells = self.grid.locate_points(points)
        labels = np.full(len(cells), -1, dtype=np.int64)
        valid = cells >= 0
        labels[valid] = self.zone_of_cell[cells[valid]]
        return labels

    def __repr__(self):
        return (
            f"RasterUnitSystem(n={len(self)}, grid={self.grid.nx}x"
            f"{self.grid.ny})"
        )
