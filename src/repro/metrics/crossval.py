"""Leave-one-dataset-out cross-validation (paper §4.1).

The paper evaluates on a pool of datasets for which *accurate*
disaggregation matrices exist.  Each dataset in turn plays the objective
attribute: its source vector is given to every method, the remaining
datasets act as GeoAlign's references, and predictions are scored against
the dataset's true target aggregates (its DM's column sums).

Datasets enter the harness as :class:`~repro.core.reference.Reference`
objects -- a reference *is* (name, source vector, DM), and its true
target vector is implied by the DM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.core.baselines import Dasymetric
from repro.core.batch import BatchAligner, ReferenceStack
from repro.core.geoalign import GeoAlign
from repro.core.shard import ShardedAligner
from repro.metrics.errors import nrmse, rmse
from repro.obs.trace import span as _span
from repro.obs.trace import timed_span as _timed_span

#: Valid GeoAlign execution engines for the cross-validation harness.
ENGINES = ("loop", "batch", "sharded")


@dataclass(frozen=True)
class MethodScore:
    """One (method, test dataset) evaluation."""

    method: str
    dataset: str
    rmse: float
    nrmse: float
    runtime_seconds: float


@dataclass
class CrossValidationResult:
    """All scores of one cross-validated experiment."""

    scores: list = field(default_factory=list)

    def methods(self):
        """Method names in first-appearance order."""
        return list(dict.fromkeys(score.method for score in self.scores))

    def datasets(self):
        """Dataset names in first-appearance order."""
        return list(dict.fromkeys(score.dataset for score in self.scores))

    def nrmse_table(self):
        """``{dataset: {method: nrmse}}`` nested mapping."""
        table = {}
        for score in self.scores:
            table.setdefault(score.dataset, {})[score.method] = score.nrmse
        return table

    def score_for(self, dataset, method):
        """The unique score for a (dataset, method) pair."""
        for score in self.scores:
            if score.dataset == dataset and score.method == method:
                return score
        raise KeyError(f"no score for dataset={dataset!r}, method={method!r}")

    def to_text(self, metric="nrmse"):
        """Fixed-width text table, datasets as rows, methods as columns."""
        methods = self.methods()
        datasets = self.datasets()
        table = self.nrmse_table()
        name_width = max(len(d) for d in datasets) + 2
        col_width = max(max(len(m) for m in methods) + 2, 12)
        lines = [
            " " * name_width
            + "".join(m.rjust(col_width) for m in methods)
        ]
        for dataset in datasets:
            row = dataset.ljust(name_width)
            for method in methods:
                value = table.get(dataset, {}).get(method)
                cell = "-" if value is None else f"{value:.4f}"
                row += cell.rjust(col_width)
            lines.append(row)
        return "\n".join(lines)


def _batch_geoalign_scores(
    datasets,
    geoalign_factory,
    reference_selector,
    cache,
    n_jobs,
    engine="batch",
    n_shards=2,
    shard_strategy="tile",
    shard_workers=1,
):
    """All folds' GeoAlign runs as one shared-stack batch (or shard set).

    Every fold aligns its held-out dataset against a subset of the same
    pool, so the N fold fits share one :class:`ReferenceStack` over *all*
    datasets; each fold is one attribute row whose mask excludes the test
    dataset (and whatever the reference selector drops).  Masked-out
    references get weight exactly 0.0, which matches the scalar path run
    on the subset (see :mod:`repro.core.batch`).  ``engine="sharded"``
    runs the identical computation through the map-reduce
    :class:`~repro.core.shard.ShardedAligner` (tolerance-equal again).

    Per-fold runtime is the batch wall-time split evenly across folds --
    the shared work has no per-fold attribution.
    """
    probe = geoalign_factory()
    if not isinstance(probe, GeoAlign):
        raise ValidationError(
            f"engine={engine!r} requires geoalign_factory to build GeoAlign "
            f"estimators (got {type(probe).__name__}); use engine='loop'"
        )
    names = [d.name for d in datasets]
    index_of = {name: i for i, name in enumerate(names)}
    masks = np.zeros((len(datasets), len(datasets)), dtype=bool)
    objectives = np.vstack([d.source_vector for d in datasets])
    for fold, test in enumerate(datasets):
        pool = [d for d in datasets if d.name != test.name]
        if reference_selector is not None:
            selected = list(reference_selector(test, pool))
            if not selected:
                raise ValidationError(
                    f"reference selector returned no references for "
                    f"{test.name!r}"
                )
        else:
            selected = pool
        for ref in selected:
            if ref.name not in index_of:
                raise ValidationError(
                    f"reference selector returned {ref.name!r}, which is "
                    "not in the dataset pool; engine='batch' requires "
                    "subsets of the pool (use engine='loop')"
                )
            masks[fold, index_of[ref.name]] = True

    with _timed_span(
        f"crossval.{engine}", n_folds=len(datasets)
    ) as clock:
        if engine == "sharded":
            aligner = ShardedAligner(
                n_shards=n_shards,
                strategy=shard_strategy,
                solver_method=probe.solver_method,
                normalize=probe.normalize,
                denominator=probe.denominator,
                cache=cache,
                max_workers=shard_workers,
                n_jobs=n_jobs,
            )
        else:
            aligner = BatchAligner(
                solver_method=probe.solver_method,
                normalize=probe.normalize,
                denominator=probe.denominator,
                cache=cache,
                n_jobs=n_jobs,
            )
        stack = ReferenceStack.build(
            datasets, normalize=probe.normalize, cache=cache
        )
        estimates = aligner.fit(
            stack, objectives, attribute_names=names, masks=masks
        ).predict()
    seconds_per_fold = clock.seconds / len(datasets)

    scores = []
    for fold, test in enumerate(datasets):
        truth = test.dm.col_sums()
        scores.append(
            MethodScore(
                "GeoAlign",
                test.name,
                rmse(estimates[fold], truth),
                nrmse(estimates[fold], truth),
                seconds_per_fold,
            )
        )
    return scores


def leave_one_dataset_out(
    datasets,
    dasymetric_reference_names=(),
    areal_reference=None,
    geoalign_factory=GeoAlign,
    reference_selector=None,
    runner=None,
    engine="loop",
    cache=None,
    n_jobs=1,
    n_shards=2,
    shard_strategy="tile",
    shard_workers=1,
):
    """Run the paper's cross-validated comparison over a dataset pool.

    Parameters
    ----------
    datasets:
        Sequence of :class:`~repro.core.reference.Reference`; each in turn
        is the held-out objective attribute.
    dasymetric_reference_names:
        Names of datasets (e.g. the three population-level ones) whose
        single-reference dasymetric method is also scored.  A dasymetric
        method is skipped on the fold where its own reference is the test
        dataset (§4.1).
    areal_reference:
        Optional :class:`Reference` whose DM is intersection areas; when
        given, areal weighting is evaluated too (skipped on its own fold
        if it also appears in ``datasets`` by name).
    geoalign_factory:
        Zero-argument callable building a fresh GeoAlign estimator per
        fold (swap in configured variants for ablations).
    reference_selector:
        Optional hook ``(test_dataset, pool) -> subset of pool`` deciding
        which references GeoAlign may use on each fold; used by the
        reference-selection experiment (§4.4.2).  Default: the full pool.
    runner:
        Optional hook ``(method_name, fit_predict_callable) -> (estimates,
        seconds)`` for instrumented timing; the default wraps each call
        in a ``crossval.method`` tracing span
        (:func:`repro.obs.timed_span`), which times with
        ``time.perf_counter`` whether or not a trace session is active.
        Only consulted by ``engine="loop"`` (the batch engine has no
        per-fold call to instrument).
    engine:
        ``"loop"`` (default) fits one scalar GeoAlign per fold;
        ``"batch"`` runs every fold through one shared
        :class:`~repro.core.batch.BatchAligner` pass (tolerance-equal,
        much faster on many folds); ``"sharded"`` runs the same shared
        pass through the map-reduce
        :class:`~repro.core.shard.ShardedAligner` (tolerance-equal,
        scales past one address space).  Baseline methods always loop.
    cache:
        Optional :class:`~repro.cache.PipelineCache` for the batch
        engine's shared reference stack.
    n_jobs:
        Thread fan-out for the batch engine's rescale/re-aggregate stage.
    n_shards, shard_strategy, shard_workers:
        Shard count, partition strategy (``"tile"``/``"block"``) and
        process-pool width for ``engine="sharded"``; ignored otherwise.

    Returns
    -------
    CrossValidationResult
    """
    if engine not in ENGINES:
        raise ValidationError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )

    datasets = list(datasets)
    if len(datasets) < 2:
        raise ValidationError(
            "cross-validation needs at least two datasets (one test fold "
            "plus at least one reference)"
        )
    names = [d.name for d in datasets]
    if len(set(names)) != len(names):
        raise ValidationError("dataset names must be unique")
    for name in dasymetric_reference_names:
        if name not in names:
            raise ValidationError(
                f"dasymetric reference {name!r} is not in the dataset pool"
            )

    if runner is None:

        def runner(method_name, call):
            with _timed_span("crossval.method", method=method_name) as clock:
                estimates = call()
            return estimates, clock.seconds

    result = CrossValidationResult()
    by_name = {d.name: d for d in datasets}

    batch_scores = None
    if engine in ("batch", "sharded"):
        batch_scores = _batch_geoalign_scores(
            datasets,
            geoalign_factory,
            reference_selector,
            cache,
            n_jobs,
            engine=engine,
            n_shards=n_shards,
            shard_strategy=shard_strategy,
            shard_workers=shard_workers,
        )

    for fold, test in enumerate(datasets):
        with _span("crossval.fold", dataset=test.name):
            truth = test.dm.col_sums()
            if batch_scores is not None:
                result.scores.append(batch_scores[fold])
            else:
                pool = [d for d in datasets if d.name != test.name]
                if reference_selector is not None:
                    selected = list(reference_selector(test, pool))
                    if not selected:
                        raise ValidationError(
                            f"reference selector returned no references "
                            f"for {test.name!r}"
                        )
                else:
                    selected = pool

                estimator = geoalign_factory()
                estimates, seconds = runner(
                    "GeoAlign",
                    lambda: estimator.fit_predict(
                        selected, test.source_vector
                    ),
                )
                result.scores.append(
                    MethodScore(
                        "GeoAlign",
                        test.name,
                        rmse(estimates, truth),
                        nrmse(estimates, truth),
                        seconds,
                    )
                )

            for ref_name in dasymetric_reference_names:
                if ref_name == test.name:
                    continue
                method = Dasymetric(by_name[ref_name])
                estimates, seconds = runner(
                    method.name,
                    lambda m=method: m.fit_predict(test.source_vector),
                )
                result.scores.append(
                    MethodScore(
                        method.name,
                        test.name,
                        rmse(estimates, truth),
                        nrmse(estimates, truth),
                        seconds,
                    )
                )

            if (
                areal_reference is not None
                and areal_reference.name != test.name
            ):
                method = Dasymetric(areal_reference)
                estimates, seconds = runner(
                    "areal-weighting",
                    lambda m=method: m.fit_predict(test.source_vector),
                )
                result.scores.append(
                    MethodScore(
                        "areal-weighting",
                        test.name,
                        rmse(estimates, truth),
                        nrmse(estimates, truth),
                        seconds,
                    )
                )

    return result
