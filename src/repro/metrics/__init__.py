"""Evaluation metrics and the cross-validation harness of paper §4."""

from repro.metrics.errors import (
    mae,
    mean_absolute_percentage_error,
    nrmse,
    pearson_correlation,
    rmse,
)
from repro.metrics.crossval import (
    CrossValidationResult,
    MethodScore,
    leave_one_dataset_out,
)

__all__ = [
    "rmse",
    "nrmse",
    "mae",
    "mean_absolute_percentage_error",
    "pearson_correlation",
    "leave_one_dataset_out",
    "CrossValidationResult",
    "MethodScore",
]
