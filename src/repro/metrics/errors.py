"""Error metrics used in the paper's evaluation (§4.2).

The paper scores realignment accuracy with root mean square error between
estimated and true target aggregates, normalised by the mean of the
measured data (NRMSE) to compare across datasets of heterogeneous scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError, ValidationError
from repro.utils.arrays import is_zero


def _paired(estimated, actual):
    est = np.asarray(estimated, dtype=float)
    act = np.asarray(actual, dtype=float)
    if est.shape != act.shape:
        raise ShapeMismatchError(
            f"estimated shape {est.shape} != actual shape {act.shape}"
        )
    if est.ndim != 1:
        raise ValidationError("metrics expect 1-D aggregate vectors")
    if len(est) == 0:
        raise ValidationError("metrics need at least one unit")
    if not (np.all(np.isfinite(est)) and np.all(np.isfinite(act))):
        raise ValidationError("metric inputs contain non-finite entries")
    return est, act


def rmse(estimated, actual):
    """Root mean square error between two aggregate vectors."""
    est, act = _paired(estimated, actual)
    return float(np.sqrt(np.mean((est - act) ** 2)))


def nrmse(estimated, actual):
    """RMSE normalised by the mean of the *actual* (measured) data.

    This is the paper's Figure 5 criterion.  Raises when the measured
    mean is zero, because the normalisation is undefined there.
    """
    est, act = _paired(estimated, actual)
    denom = float(np.mean(act))
    if is_zero(denom):
        raise ValidationError(
            "NRMSE undefined: measured data has (numerically) zero mean"
        )
    return rmse(est, act) / abs(denom)


def mae(estimated, actual):
    """Mean absolute error."""
    est, act = _paired(estimated, actual)
    return float(np.mean(np.abs(est - act)))


def mean_absolute_percentage_error(estimated, actual, epsilon=1e-12):
    """MAPE over units whose actual value is non-negligible.

    Units with ``|actual| <= epsilon`` are skipped (administrative counts
    are frequently zero in rural units and would blow up the ratio).
    """
    est, act = _paired(estimated, actual)
    mask = np.abs(act) > epsilon
    if not np.any(mask):
        raise ValidationError("MAPE undefined: all actual values are ~0")
    return float(np.mean(np.abs((est[mask] - act[mask]) / act[mask])))


def pearson_correlation(x, y):
    """Pearson correlation, 0.0 when either vector is constant."""
    a, b = _paired(x, y)
    if is_zero(float(a.std())) or is_zero(float(b.std())):
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
