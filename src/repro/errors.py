"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an integration boundary.  Subclasses encode
*what* went wrong rather than *where*, following the convention that the
module raising the error is visible in the traceback anyway.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input failed a structural or numerical validity check."""


class PartitionError(ValidationError):
    """A unit system is not a valid partition of its universe.

    Raised for overlapping units, units escaping the universe, or a unit
    system whose labels are not unique.
    """


class ShapeMismatchError(ValidationError):
    """Two inputs that must agree in shape or labelling do not."""


class GeometryError(ReproError):
    """A geometric primitive or operation received degenerate input."""


class SolverError(ReproError):
    """The weight-learning solver failed to converge or received bad data."""


class NotFittedError(ReproError, RuntimeError):
    """``predict`` was called on an estimator before ``fit``."""


class CrosswalkError(ReproError):
    """A crosswalk file or specification is malformed."""
