"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an integration boundary.  Subclasses encode
*what* went wrong rather than *where*, following the convention that the
module raising the error is visible in the traceback anyway.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input failed a structural or numerical validity check."""


class PartitionError(ValidationError):
    """A unit system is not a valid partition of its universe.

    Raised for overlapping units, units escaping the universe, or a unit
    system whose labels are not unique.
    """


class ShapeMismatchError(ValidationError):
    """Two inputs that must agree in shape or labelling do not."""


class GeometryError(ReproError):
    """A geometric primitive or operation received degenerate input."""


class SolverError(ReproError):
    """The weight-learning solver failed to converge or received bad data."""


class NotFittedError(ReproError, RuntimeError):
    """``predict`` was called on an estimator before ``fit``."""


class CrosswalkError(ReproError):
    """A crosswalk file or specification is malformed."""


class StoreError(ReproError):
    """A model-store artifact could not be saved, found, or trusted.

    Raised for missing/ambiguous fingerprints, unreadable manifests,
    format-version skew, and payloads whose checksum does not match the
    manifest -- every load-time defect surfaces as this one typed error
    instead of propagating JSON/zip/numpy internals to the caller.
    """


class ServeError(ReproError):
    """The alignment service could not satisfy a request or protocol step.

    Carries the stable error-envelope code (``bad-request``,
    ``unknown-model``, ``payload-too-large``, ...) and the HTTP status
    the server maps it to; see ``docs/serving.md`` for the catalogue.
    """

    def __init__(
        self, message: str, code: str = "internal", status: int = 500
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = status


class ShardError(ReproError):
    """A shard worker failed during the map phase of a sharded alignment.

    Carries the shard id and phase so operators can pin a failure to the
    partition that produced it; the driver drains the process pool before
    raising, so a worker crash never hangs the fit.
    """

    def __init__(
        self,
        message: str,
        shard_id: int | None = None,
        phase: str | None = None,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.phase = phase
