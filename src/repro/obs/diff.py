"""Run comparison: per-stage timing / counter / gauge deltas.

``geoalign-repro obs diff A B`` answers "what changed between these two
runs" from their durable records alone: for every stage (per-span-name
total seconds), counter and gauge present in either run,
:func:`diff_records` reports baseline value, candidate value, absolute
delta and ratio, and flags the entries whose relative change crosses a
threshold — so a 2x slower ``stack.construct`` or a volume-residual
gauge jumping six orders of magnitude stands out of a fifty-line table
at a glance.

Inputs are :class:`~repro.obs.registry.RunRecord` objects; the CLI
builds them on the fly from trace JSONL files or resolves them from
the run registry, so any two of {trace file, registry id} diff against
each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.obs.registry import RunRecord

__all__ = ["DiffEntry", "RunDiff", "diff_records"]

#: Relative-change threshold above which an entry is flagged.
DEFAULT_THRESHOLD = 0.5

#: Stage timings below this many seconds are never flagged: the ratio
#: of two sub-millisecond timings is timer noise, not a regression.
MIN_FLAGGED_SECONDS = 1e-3


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity across the two runs.

    ``base``/``cand`` are ``None`` when the quantity exists in only one
    run (a stage that appeared or disappeared is always flagged).
    """

    section: str
    name: str
    base: float | None
    cand: float | None
    flagged: bool

    @property
    def delta(self) -> float:
        return (self.cand or 0.0) - (self.base or 0.0)

    @property
    def ratio(self) -> float | None:
        """``cand / base``, or ``None`` when the base is zero/absent."""
        if self.base is None or self.cand is None or self.base == 0.0:  # repro-lint: allow[float-eq] exact-zero base has no meaningful ratio
            return None
        return self.cand / self.base

    def to_dict(self) -> dict[str, object]:
        return {
            "section": self.section,
            "name": self.name,
            "base": self.base,
            "cand": self.cand,
            "delta": self.delta,
            "ratio": self.ratio,
            "flagged": self.flagged,
        }


class RunDiff:
    """All :class:`DiffEntry` rows for one baseline/candidate pair."""

    def __init__(
        self, base: RunRecord, cand: RunRecord, entries: list[DiffEntry]
    ) -> None:
        self.base = base
        self.cand = cand
        self.entries = entries

    @property
    def flagged(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.flagged]

    def section(self, name: str) -> list[DiffEntry]:
        return [e for e in self.entries if e.section == name]

    def to_dict(self) -> dict[str, object]:
        return {
            "base": self.base.run_id,
            "candidate": self.cand.run_id,
            "entries": [e.to_dict() for e in self.entries],
            "flagged": len(self.flagged),
        }

    def to_text(self) -> str:
        """The diff as the ``obs diff`` table (flagged rows marked ``!``)."""
        lines = [
            f"diff: {self.base.trace_name} ({self.base.run_id}) -> "
            f"{self.cand.trace_name} ({self.cand.run_id})",
            f"wall: {self.base.wall_seconds:.4f}s -> "
            f"{self.cand.wall_seconds:.4f}s",
        ]
        if self.base.health or self.cand.health:
            changed = [
                name
                for name in sorted(
                    set(self.base.health) | set(self.cand.health)
                )
                if self.base.health.get(name) != self.cand.health.get(name)
            ]
            for name in changed:
                lines.append(
                    f"health {name}: {self.base.health.get(name, '-')} -> "
                    f"{self.cand.health.get(name, '-')}"
                )
        header = (
            f"  {'section':9s}{'name':34s}{'base':>13s}{'cand':>13s}"
            f"{'delta':>13s}{'ratio':>8s}"
        )
        for section in ("stages", "counters", "gauges"):
            rows = self.section(section)
            if not rows:
                continue
            lines.append(header)
            for entry in rows:
                mark = "!" if entry.flagged else " "
                base = "-" if entry.base is None else f"{entry.base:.5g}"
                cand = "-" if entry.cand is None else f"{entry.cand:.5g}"
                ratio = (
                    "-" if entry.ratio is None else f"{entry.ratio:.3g}x"
                )
                lines.append(
                    f"{mark} {entry.section:9s}{entry.name:34s}"
                    f"{base:>13s}{cand:>13s}{entry.delta:>13.5g}"
                    f"{ratio:>8s}"
                )
        lines.append(
            f"{len(self.flagged)} of {len(self.entries)} entries flagged"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RunDiff({self.base.run_id} -> {self.cand.run_id}, "
            f"entries={len(self.entries)}, flagged={len(self.flagged)})"
        )


def _flag(
    section: str,
    base: float | None,
    cand: float | None,
    threshold: float,
) -> bool:
    if base is None or cand is None:
        return True  # appeared or disappeared
    if section == "stages" and max(abs(base), abs(cand)) < MIN_FLAGGED_SECONDS:
        return False
    scale = max(abs(base), abs(cand))
    if scale == 0.0:  # repro-lint: allow[float-eq] both exactly zero means no change at all
        return False
    return abs(cand - base) / scale > threshold


def _diff_section(
    section: str,
    base: dict[str, float],
    cand: dict[str, float],
    threshold: float,
) -> list[DiffEntry]:
    entries: list[DiffEntry] = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        entries.append(
            DiffEntry(
                section=section,
                name=name,
                base=b,
                cand=c,
                flagged=_flag(section, b, c, threshold),
            )
        )
    return entries


def diff_records(
    base: RunRecord,
    cand: RunRecord,
    threshold: float = DEFAULT_THRESHOLD,
) -> RunDiff:
    """Compare two run records section by section.

    Parameters
    ----------
    base, cand:
        Baseline and candidate runs.
    threshold:
        Relative change (``|delta| / max(|base|, |cand|)``) above which
        an entry is flagged; quantities present in only one run are
        always flagged, sub-millisecond stage timings never.
    """
    if threshold <= 0.0:
        raise ValidationError(
            f"threshold must be positive, got {threshold}"
        )
    entries = (
        _diff_section("stages", base.stages, cand.stages, threshold)
        + _diff_section("counters", base.counters, cand.counters, threshold)
        + _diff_section("gauges", base.gauges, cand.gauges, threshold)
    )
    return RunDiff(base, cand, entries)
