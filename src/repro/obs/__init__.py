"""Structured observability for the alignment pipeline (``repro.obs``).

A lightweight, dependency-free tracing layer: hierarchical spans,
point-in-time events, and a counter/gauge registry, recorded per run
into :class:`~repro.obs.trace.Trace` sessions.  Instrumentation calls
(:func:`span`, :func:`event`, :func:`incr`) are no-ops costing one
context-variable read when no session is active, so the hot paths stay
hot; opening a session with :func:`trace` turns them on for everything
the ``with`` block calls, across module boundaries, via contextvars.

Three consumers share the records:

* the CLI's ``--trace FILE`` (JSON-lines export, :mod:`repro.obs.export`)
  and ``--profile`` (text summary tree, :mod:`repro.obs.profile`) flags,
* the benchmark harness, which persists stage breakdowns and cache
  statistics next to its wall-time metrics for the regression gate, and
* the test suite's ``capture_trace`` fixture, which turns emitted
  spans/events into executable documentation of the engine's promised
  behaviour ("one blend matmul per batch", "second build is a cache
  hit").

See ``docs/observability.md`` for the span model and event schema.
"""

from repro.obs.trace import (
    EventRecord,
    SpanRecord,
    TimedHandle,
    Trace,
    event,
    incr,
    set_gauge,
    span,
    timed_span,
    trace,
    tracing_active,
)
from repro.obs.export import trace_to_jsonl, trace_to_records, write_trace_jsonl
from repro.obs.profile import format_profile

__all__ = [
    "EventRecord",
    "SpanRecord",
    "TimedHandle",
    "Trace",
    "event",
    "incr",
    "set_gauge",
    "span",
    "timed_span",
    "trace",
    "tracing_active",
    "trace_to_jsonl",
    "trace_to_records",
    "write_trace_jsonl",
    "format_profile",
]
