"""Structured observability for the alignment pipeline (``repro.obs``).

A lightweight, dependency-free tracing layer: hierarchical spans,
point-in-time events, and a counter/gauge registry, recorded per run
into :class:`~repro.obs.trace.Trace` sessions.  Instrumentation calls
(:func:`span`, :func:`event`, :func:`incr`) are no-ops costing one
context-variable read when no session is active, so the hot paths stay
hot; opening a session with :func:`trace` turns them on for everything
the ``with`` block calls, across module boundaries, via contextvars.

Consumers sharing the records:

* the CLI's ``--trace FILE`` (JSON-lines export, :mod:`repro.obs.export`)
  and ``--profile`` (text summary tree, :mod:`repro.obs.profile`) flags,
* the ``geoalign-repro obs`` analysis family — health reports over a
  trace (:mod:`repro.obs.health`), run-to-run deltas
  (:mod:`repro.obs.diff`) and the persistent run registry
  (:mod:`repro.obs.registry`),
* the benchmark harness, which persists stage breakdowns, cache
  statistics and (opt-in, :mod:`repro.obs.memory`) allocation peaks
  next to its wall-time metrics for the regression gate, and
* the test suite's ``capture_trace`` fixture, which turns emitted
  spans/events into executable documentation of the engine's promised
  behaviour ("one blend matmul per batch", "second build is a cache
  hit").

See ``docs/observability.md`` for the span model, event schema and the
health-check catalogue.
"""

# Import order matters: repro.obs.trace must load before repro.obs.health,
# whose repro.core imports come back to repro.obs.trace mid-initialisation.
from repro.obs.trace import (
    EventRecord,
    SpanRecord,
    TimedHandle,
    Trace,
    TraceContext,
    current_trace_context,
    event,
    incr,
    set_gauge,
    set_gauge_max,
    set_gauge_min,
    span,
    timed_span,
    trace,
    tracing_active,
)
from repro.obs.telemetry import (
    SPANS_DROPPED,
    SpanCapture,
    stitch_capture,
    worker_capture,
)
from repro.obs.export import (
    read_trace_jsonl,
    trace_to_jsonl,
    trace_to_records,
    write_trace_jsonl,
)
from repro.obs.promfmt import (
    PROMETHEUS_CONTENT_TYPE,
    Histogram,
    MetricFamily,
    Sample,
    parse_prometheus_text,
    render_prometheus_text,
)
from repro.obs.profile import format_profile, profile_coverage
from repro.obs.health import (
    CheckResult,
    HealthCheck,
    HealthReport,
    all_checks,
    evaluate_health,
    model_gauges,
    register_check,
)
from repro.obs.registry import (
    RunRecord,
    RunRegistry,
    default_registry_path,
    record_from_trace,
)
from repro.obs.diff import DiffEntry, RunDiff, diff_records
from repro.obs.memory import MemoryHandle, track_memory

__all__ = [
    "EventRecord",
    "SpanRecord",
    "TimedHandle",
    "Trace",
    "TraceContext",
    "current_trace_context",
    "event",
    "incr",
    "set_gauge",
    "set_gauge_max",
    "set_gauge_min",
    "span",
    "timed_span",
    "trace",
    "tracing_active",
    "SPANS_DROPPED",
    "SpanCapture",
    "stitch_capture",
    "worker_capture",
    "PROMETHEUS_CONTENT_TYPE",
    "Histogram",
    "MetricFamily",
    "Sample",
    "parse_prometheus_text",
    "render_prometheus_text",
    "read_trace_jsonl",
    "trace_to_jsonl",
    "trace_to_records",
    "write_trace_jsonl",
    "format_profile",
    "profile_coverage",
    "CheckResult",
    "HealthCheck",
    "HealthReport",
    "all_checks",
    "evaluate_health",
    "model_gauges",
    "register_check",
    "RunRecord",
    "RunRegistry",
    "default_registry_path",
    "record_from_trace",
    "DiffEntry",
    "RunDiff",
    "diff_records",
    "MemoryHandle",
    "track_memory",
]
