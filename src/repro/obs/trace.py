"""Tracing core: spans, events, counters, and the active-session stack.

The model is deliberately small:

* A :class:`Trace` is one recording session (one CLI run, one test
  block).  It collects finished :class:`SpanRecord` and
  :class:`EventRecord` objects plus named counters and gauges.
* :func:`span` opens a *hierarchical* timed region.  Parent linkage is
  carried in a :class:`contextvars.ContextVar`, so a span opened three
  stack frames below another attaches to it automatically -- no tracer
  object is threaded through call signatures.
* :func:`event` records a point in time (solver converged, cache hit)
  attached to whichever span is current.
* :func:`incr` / :func:`set_gauge` maintain the counter/gauge registry
  of every active session.

Several sessions may be active at once (a test fixture inside a traced
CLI run); every record is delivered to all of them.  Ids are allocated
from one process-wide counter so records of the same span agree across
sessions.

When *no* session is active, every instrumentation function returns
after a single ``ContextVar.get()`` -- cheap enough for per-solve hot
paths (``BENCH_obs.json`` prices every call the batch workload makes
at the measured disabled-``span`` rate, and the regression gate holds
the total under 1 % of the untraced wall time).

Timestamps are monotonic ``time.perf_counter`` values (the ``wallclock``
lint rule bans ``time.time()`` in measured paths); exported traces
report times relative to the session start.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "EventRecord",
    "SpanRecord",
    "TimedHandle",
    "Trace",
    "TraceContext",
    "current_trace_context",
    "event",
    "incr",
    "set_gauge",
    "set_gauge_max",
    "set_gauge_min",
    "span",
    "timed_span",
    "trace",
    "tracing_active",
]

#: Process-wide id source shared by spans and events, so ids are unique
#: within any session regardless of how many sessions observed them.
_IDS = itertools.count(1)

#: The stack of active recording sessions (empty tuple = tracing off).
_ACTIVE: ContextVar[tuple["Trace", ...]] = ContextVar(
    "repro_obs_active", default=()
)

#: Id of the innermost open span, for parent linkage; ``None`` at root.
_PARENT: ContextVar[int | None] = ContextVar("repro_obs_parent", default=None)


@dataclass
class SpanRecord:
    """One finished (or still-open) timed region.

    Attributes
    ----------
    span_id, parent_id:
        Process-unique id and the id of the enclosing span (``None``
        for a session root or a span whose parent belongs to an outer
        session).
    name:
        Dotted span name, e.g. ``"stage.weights"``.
    started, ended:
        ``perf_counter`` timestamps; ``ended`` is ``None`` while open.
    attrs:
        Keyword attributes given at open time.
    status:
        ``"ok"``, or ``"error"`` when an exception escaped the span.
    """

    span_id: int
    parent_id: int | None
    name: str
    started: float
    ended: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    status: str = "ok"

    @property
    def seconds(self) -> float:
        """Span duration (0.0 while the span is still open)."""
        if self.ended is None:
            return 0.0
        return self.ended - self.started


@dataclass
class EventRecord:
    """One point-in-time record attached to the then-current span."""

    event_id: int
    span_id: int | None
    name: str
    at: float
    fields: dict[str, object] = field(default_factory=dict)


class Trace:
    """One recording session: spans, events, counters, gauges.

    Instances are created by :func:`trace`; tests receive them from the
    ``capture_trace`` fixture and assert on the query helpers below.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.started = time.perf_counter()
        self.ended: float | None = None
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        # Guards every mutation of the four registries above.  Sessions
        # are shared with pool workers via TraceContext.activate(), so
        # counter/gauge read-modify-writes race without it; the lock is
        # uncontended (and cheap) in single-threaded runs.
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def _record_span(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def _record_event(self, record: EventRecord) -> None:
        with self._lock:
            self.events.append(record)

    def _add_counter(self, name: str, amount: float) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def _set_gauge(self, name: str, value: float, mode: str = "set") -> None:
        """Apply one gauge write under the session lock.

        ``mode`` is ``"set"``, ``"max"`` (high-water) or ``"min"``
        (low-water).  Centralised here -- rather than inlined in the
        module-level helpers -- so subclasses that ship across a process
        boundary (:class:`repro.obs.telemetry.SpanCapture`) can record
        the *operation*, not just the final value, and replay it with
        identical semantics on the driver side.
        """
        with self._lock:
            if mode == "max":
                current = self.gauges.get(name)
                if current is None or value > current:
                    self.gauges[name] = float(value)
            elif mode == "min":
                current = self.gauges.get(name)
                if current is None or value < current:
                    self.gauges[name] = float(value)
            else:
                self.gauges[name] = float(value)

    # -- queries (used by tests, export and the profile tree) -----------
    @property
    def wall_seconds(self) -> float:
        """Session wall time; measured to now while still open."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    def find_spans(self, name: str) -> list[SpanRecord]:
        """All spans named ``name``, in open order."""
        return [s for s in self.spans if s.name == name]

    def find_events(self, name: str) -> list[EventRecord]:
        """All events named ``name``, in emit order."""
        return [e for e in self.events if e.name == name]

    def span_names(self) -> list[str]:
        """Distinct span names in first-open order."""
        return list(dict.fromkeys(s.name for s in self.spans))

    def span_seconds(self, name: str) -> float:
        """Total seconds across all spans named ``name``."""
        return sum(s.seconds for s in self.find_spans(name))

    def root_spans(self) -> list[SpanRecord]:
        """Spans whose parent is not recorded in *this* session."""
        known = {s.span_id for s in self.spans}
        return [
            s
            for s in self.spans
            if s.parent_id is None or s.parent_id not in known
        ]

    def children_of(self, span_id: int) -> list[SpanRecord]:
        """Direct children of the span with id ``span_id``."""
        return [s for s in self.spans if s.parent_id == span_id]

    def ancestors_of(self, record: SpanRecord) -> list[SpanRecord]:
        """Parent chain of ``record``, innermost first."""
        by_id = {s.span_id: s for s in self.spans}
        chain: list[SpanRecord] = []
        parent_id = record.parent_id
        while parent_id is not None and parent_id in by_id:
            parent = by_id[parent_id]
            chain.append(parent)
            parent_id = parent.parent_id
        return chain

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, spans={len(self.spans)}, "
            f"events={len(self.events)}, counters={len(self.counters)})"
        )


def tracing_active() -> bool:
    """Whether at least one recording session is currently active."""
    return bool(_ACTIVE.get())


@contextmanager
def trace(name: str = "trace", /, **attrs: object) -> Iterator[Trace]:
    """Open a recording session (and its root span) for the block.

    Everything called inside the ``with`` block -- across module
    boundaries -- delivers its spans, events and counter updates to the
    yielded :class:`Trace`.  Sessions nest: an inner ``trace`` records
    alongside (not instead of) any outer ones.
    """
    session = Trace(name)
    token = _ACTIVE.set(_ACTIVE.get() + (session,))
    try:
        with span(name, **attrs):
            yield session
    finally:
        session.ended = time.perf_counter()
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, /, **attrs: object) -> Iterator[SpanRecord | None]:
    """Record a named, timed, hierarchical region of the block.

    Yields the :class:`SpanRecord` (shared by every active session) so
    callers may attach attributes mid-flight, or ``None`` when tracing
    is off.  An exception escaping the block marks the span
    ``status="error"`` before re-raising.
    """
    sessions = _ACTIVE.get()
    if not sessions:
        yield None
        return
    record = SpanRecord(
        span_id=next(_IDS),
        parent_id=_PARENT.get(),
        name=name,
        started=time.perf_counter(),
        attrs=dict(attrs),
    )
    for session in sessions:
        session._record_span(record)
    token = _PARENT.set(record.span_id)
    try:
        yield record
    except BaseException:
        record.status = "error"
        raise
    finally:
        _PARENT.reset(token)
        record.ended = time.perf_counter()


class TimedHandle:
    """Duration carrier for :func:`timed_span`; always populated."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


@contextmanager
def timed_span(name: str, /, **attrs: object) -> Iterator[TimedHandle]:
    """A :func:`span` that also measures when tracing is *off*.

    Replaces ad-hoc ``perf_counter`` bookkeeping at call sites that need
    the duration as a return value (cross-validation fold timing, the
    scalability figure) while still contributing a span to any active
    session.
    """
    handle = TimedHandle()
    start = time.perf_counter()
    with span(name, **attrs):
        try:
            yield handle
        finally:
            handle.seconds = time.perf_counter() - start


def event(name: str, /, **fields: object) -> None:
    """Record a point-in-time event on the current span (if tracing)."""
    sessions = _ACTIVE.get()
    if not sessions:
        return
    record = EventRecord(
        event_id=next(_IDS),
        span_id=_PARENT.get(),
        name=name,
        at=time.perf_counter(),
        fields=dict(fields),
    )
    for session in sessions:
        session._record_event(record)


def incr(name: str, amount: float = 1.0) -> None:
    """Add ``amount`` to counter ``name`` in every active session.

    Thread-safe: the read-modify-write runs under the session lock, so
    pool workers carrying a session via :class:`TraceContext` never lose
    increments to interleaving.
    """
    for session in _ACTIVE.get():
        session._add_counter(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` in every active session."""
    for session in _ACTIVE.get():
        session._set_gauge(name, float(value), "set")


def set_gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to ``value`` if larger (high-water mark).

    The health monitors emit worst-case-per-run gauges with this: a
    cross-validation run fits many models, and the run's verdict must
    reflect the *worst* volume residual or condition number seen, not
    whichever fit happened to run last.  The compare-and-set runs under
    the session lock so concurrent workers cannot overwrite a higher
    water mark with a lower one.
    """
    for session in _ACTIVE.get():
        session._set_gauge(name, float(value), "max")


def set_gauge_min(name: str, value: float) -> None:
    """Lower gauge ``name`` to ``value`` if smaller (low-water mark).

    Mirror of :func:`set_gauge_max` for lower-is-worse health signals
    (effective number of references under weight degeneracy).
    """
    for session in _ACTIVE.get():
        session._set_gauge(name, float(value), "min")


# ----------------------------------------------------------------------
# Cross-thread propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """Immutable snapshot of the tracing state of one thread.

    ContextVars do not propagate into ``ThreadPoolExecutor`` workers:
    without help, instrumentation in a worker sees no active sessions
    and is silently dropped.  A single copied ``contextvars.Context``
    cannot be the fix either -- ``Context.run`` raises when entered
    concurrently from several threads.  So the submitting thread takes
    one cheap snapshot::

        ctx = current_trace_context()
        pool.map(lambda item: worker(ctx, item), items)

    and each worker wraps its body in ``with ctx.activate():``, which
    re-points the worker's *own* context at the captured sessions and
    parent span.  Record delivery is safe because every
    :class:`Trace` guards its registries with a lock.
    """

    sessions: tuple[Trace, ...]
    parent_id: int | None

    @contextmanager
    def activate(self) -> Iterator[None]:
        """Make the captured sessions current for this thread's block."""
        active_token = _ACTIVE.set(self.sessions)
        parent_token = _PARENT.set(self.parent_id)
        try:
            yield
        finally:
            _PARENT.reset(parent_token)
            _ACTIVE.reset(active_token)


def current_trace_context() -> TraceContext:
    """Snapshot the calling thread's sessions + current span."""
    return TraceContext(sessions=_ACTIVE.get(), parent_id=_PARENT.get())
