"""Cross-process span propagation: capture in workers, stitch in drivers.

Spans emitted inside a ``ProcessPoolExecutor`` worker are invisible to
the driver's sessions: the worker runs in another address space, so the
contextvar session stack either is empty (spawn) or points at forked
copies whose records die with the child.  This module closes that gap
with a record-and-replay wire format:

* :class:`SpanCapture` is a picklable :class:`~repro.obs.trace.Trace`
  subclass.  A worker activates one for the duration of its body; every
  ``span``/``event``/``incr``/gauge call inside — including nested
  kernel instrumentation — lands in the capture through the normal
  session machinery, at the normal cost (no extra hot-path branches).
  The capture rides back to the driver as one element of the worker's
  result tuple.
* :func:`worker_capture` is the one-liner workers wrap their body in:
  it activates a capture, opens the conventional root span, and hands
  the capture back for shipping.
* :func:`stitch_capture` replays a returned capture into the driver's
  active sessions: span/event ids are re-allocated from the driver's id
  source, the capture's root spans are re-parented under the driver's
  current span, counters are folded additively, and gauge *operations*
  (set/max/min, recorded via the ``Trace._set_gauge`` hook) are
  replayed with their original semantics.

Clock reconciliation: ``perf_counter`` bases are not comparable across
processes.  Each capture notes its own creation time (worker clock);
the driver passes the ``perf_counter`` it read when submitting the task
(driver clock) as the *anchor*, and every stitched timestamp is shifted
by ``anchor - capture.started``.  Queue wait thus shows up as the gap
between the submitting span's start and the worker root span's start,
and sibling shards remain ordered by actual submit time.  Inline
(same-process) execution stitches with no shift, so pooled and inline
runs produce identical span trees up to timing.

Loss is never silent: captures bound their record count, and both the
per-capture overflow count and any capture discarded wholesale (worker
crash, missing return slot) are folded into the
``telemetry.spans_dropped`` counter of the receiving sessions.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.obs.trace import (
    _ACTIVE,
    _IDS,
    _PARENT,
    EventRecord,
    SpanRecord,
    Trace,
    incr,
    span,
)

__all__ = [
    "SPANS_DROPPED",
    "SpanCapture",
    "stitch_capture",
    "worker_capture",
]

#: Counter name under which every form of capture loss is surfaced.
SPANS_DROPPED = "telemetry.spans_dropped"

#: Default bound on records (spans + events) per capture.  A shard
#: worker emits a handful of kernel spans; hitting this means runaway
#: instrumentation, and the overflow is counted, not silently eaten.
MAX_RECORDS = 4096


class SpanCapture(Trace):
    """Picklable recording session for one process-pool worker task.

    A disabled capture (``enabled=False``) is inert: activation clears
    the session stack (so instrumentation no-ops even under ``fork``,
    where the child would otherwise write into doomed copies of the
    parent's sessions) and nothing is recorded or shipped.

    ``gauge_ops`` preserves gauge write *operations* in order so the
    driver can replay high-/low-water semantics exactly; ``n_dropped``
    counts records refused once ``max_records`` is reached.
    """

    def __init__(
        self,
        name: str = "capture",
        *,
        enabled: bool = True,
        max_records: int = MAX_RECORDS,
    ) -> None:
        super().__init__(name)
        self.enabled = bool(enabled)
        self.max_records = int(max_records)
        self.n_dropped = 0
        self.gauge_ops: list[tuple[str, float, str]] = []

    # -- bounded recording ----------------------------------------------
    def _n_records(self) -> int:
        return len(self.spans) + len(self.events)

    def _record_span(self, record: SpanRecord) -> None:
        with self._lock:
            if self._n_records() >= self.max_records:
                self.n_dropped += 1
                return
            self.spans.append(record)

    def _record_event(self, record: EventRecord) -> None:
        with self._lock:
            if self._n_records() >= self.max_records:
                self.n_dropped += 1
                return
            self.events.append(record)

    def _set_gauge(self, name: str, value: float, mode: str = "set") -> None:
        super()._set_gauge(name, value, mode)
        with self._lock:
            self.gauge_ops.append((name, float(value), mode))

    # -- worker-side activation -----------------------------------------
    @contextmanager
    def activate(self) -> Iterator[None]:
        """Make this capture the *only* active session for the block.

        Replacing (not extending) the stack is deliberate: under the
        ``fork`` start method the child inherits the parent's session
        tuple, and records delivered to those copies are lost when the
        worker exits.  Routing everything into the capture keeps the
        worker cheap and the records recoverable.
        """
        active_token = _ACTIVE.set((self,) if self.enabled else ())
        parent_token = _PARENT.set(None)
        try:
            yield
        finally:
            _PARENT.reset(parent_token)
            _ACTIVE.reset(active_token)

    # -- pickling -------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]  # threading locks do not pickle
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


@contextmanager
def worker_capture(
    name: str, /, *, enabled: bool = True, **attrs: object
) -> Iterator[SpanCapture]:
    """Record a worker task body into a shippable :class:`SpanCapture`.

    Usage in a pool worker::

        def _worker(payload):
            ..., capture_on = payload
            with worker_capture(
                "shard.worker", enabled=capture_on, shard=3, phase="fit"
            ) as capture:
                ...  # instrumented work
            return ..., capture

    The yielded capture contains a root span ``name`` (with ``attrs``)
    wrapping everything recorded inside the block.  When ``enabled`` is
    false the capture is inert and instrumentation inside the block
    no-ops.  The capture is sealed (``ended`` stamped) when the block
    exits, even on error, so a crash that is caught worker-side can
    still ship partial telemetry.
    """
    capture = SpanCapture(name, enabled=enabled)
    try:
        with capture.activate():
            if not capture.enabled:
                yield capture
                return
            with span(name, **attrs):
                yield capture
    finally:
        capture.ended = time.perf_counter()


def stitch_capture(
    capture: SpanCapture | None, *, anchor: float | None = None
) -> int:
    """Replay a worker's capture into the caller's active sessions.

    Parameters
    ----------
    capture:
        The capture returned by the worker, or ``None`` if the result
        slot was lost (counted as a drop).
    anchor:
        Caller-clock ``perf_counter`` taken when the task was submitted.
        Worker-relative timestamps are shifted by
        ``anchor - capture.started`` so they land on the caller's
        timeline at the submit instant.  ``None`` means same-clock
        (inline execution): timestamps pass through unshifted.

    Returns the number of spans stitched.  Ids are re-allocated from
    the caller's process-wide source; the capture's root spans are
    parented under the caller's current span; counters fold additively;
    gauge operations replay with their recorded set/max/min semantics.
    Capture overflow (``n_dropped``) and wholesale loss both surface on
    the ``telemetry.spans_dropped`` counter.
    """
    sessions = _ACTIVE.get()
    if not sessions:
        return 0
    if capture is None:
        incr(SPANS_DROPPED, 1.0)
        return 0
    if not capture.enabled:
        return 0
    shift = 0.0 if anchor is None else anchor - capture.started
    parent = _PARENT.get()
    id_map: dict[int, int] = {}
    stitched = 0
    ordered = sorted(capture.spans, key=lambda s: (s.started, s.span_id))
    for record in ordered:
        ended = record.ended if record.ended is not None else record.started
        new = SpanRecord(
            span_id=next(_IDS),
            parent_id=id_map.get(
                record.parent_id, parent
            ) if record.parent_id is not None else parent,
            name=record.name,
            started=record.started + shift,
            ended=ended + shift,
            attrs=dict(record.attrs),
            status=record.status,
        )
        id_map[record.span_id] = new.span_id
        for session in sessions:
            session._record_span(new)
        stitched += 1
    for event in capture.events:
        owner = (
            id_map.get(event.span_id, parent)
            if event.span_id is not None
            else parent
        )
        new_event = EventRecord(
            event_id=next(_IDS),
            span_id=owner,
            name=event.name,
            at=event.at + shift,
            fields=dict(event.fields),
        )
        for session in sessions:
            session._record_event(new_event)
    for counter_name, amount in capture.counters.items():
        incr(counter_name, amount)
    for gauge_name, value, mode in capture.gauge_ops:
        for session in sessions:
            session._set_gauge(gauge_name, value, mode)
    if capture.n_dropped:
        incr(SPANS_DROPPED, float(capture.n_dropped))
    return stitched
