"""Text profile tree of a :class:`~repro.obs.trace.Trace` session.

``format_profile`` renders the span hierarchy as an indented tree,
merging sibling spans that share a name (a cross-validation run opens
one ``crossval.fold`` span per fold; the profile shows one line with
``count=8``).  Each line reports total seconds, the share of the parent
line's time, and the call count; the header reports *coverage* -- the
fraction of session wall time accounted for by recorded root spans,
which the CLI acceptance gate holds above 95 %.

Counters, gauges and an event tally follow the tree, so a single
``--profile`` dump answers "where did the time go, did the solver
converge, and did the cache help" at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import SpanRecord, Trace

__all__ = ["format_profile", "profile_coverage"]


@dataclass
class _Node:
    """Aggregated profile line: same-named siblings merged."""

    name: str
    seconds: float = 0.0
    count: int = 0
    errors: int = 0
    children: dict[str, "_Node"] = field(default_factory=dict)


def _aggregate(
    spans: list[SpanRecord], by_parent: dict[int | None, list[SpanRecord]]
) -> dict[str, _Node]:
    nodes: dict[str, _Node] = {}
    for span in spans:
        node = nodes.setdefault(span.name, _Node(span.name))
        node.seconds += span.seconds
        node.count += 1
        if span.status != "ok":
            node.errors += 1
        children = by_parent.get(span.span_id, [])
        if children:
            merged = _aggregate(children, by_parent)
            for name, child in merged.items():
                into = node.children.setdefault(name, _Node(name))
                into.seconds += child.seconds
                into.count += child.count
                into.errors += child.errors
                _merge_children(into, child)
    return nodes


def _merge_children(into: _Node, other: _Node) -> None:
    for name, child in other.children.items():
        target = into.children.setdefault(name, _Node(name))
        target.seconds += child.seconds
        target.count += child.count
        target.errors += child.errors
        _merge_children(target, child)


def profile_coverage(session: Trace) -> float:
    """Fraction of session wall time covered by recorded root spans."""
    wall = session.wall_seconds
    if wall <= 0.0:
        return 0.0
    covered = sum(span.seconds for span in session.root_spans())
    return min(covered / wall, 1.0)


#: Width of the span-name column in the profile table; longer labels
#: are truncated with an ellipsis so the numeric columns stay aligned.
_LABEL_WIDTH = 44


def _fit_label(label: str, width: int = _LABEL_WIDTH) -> str:
    """``label`` padded (or ellipsis-truncated) to exactly ``width``."""
    if len(label) > width:
        return label[: width - 1] + "…"
    return f"{label:{width}s}"


def _render(
    node: _Node, parent_seconds: float, depth: int, lines: list[str]
) -> None:
    share = 100.0 * node.seconds / parent_seconds if parent_seconds > 0 else 0.0
    label = _fit_label("  " * depth + node.name)
    flag = f"  errors={node.errors}" if node.errors else ""
    lines.append(
        f"{label}{node.seconds:10.4f}s{share:7.1f}%{node.count:6d}x{flag}"
    )
    for child in sorted(
        node.children.values(), key=lambda n: -n.seconds
    ):
        _render(child, node.seconds, depth + 1, lines)


def format_profile(session: Trace) -> str:
    """Render the session as an indented profile tree plus registries."""
    by_parent: dict[int | None, list[SpanRecord]] = {}
    known = {span.span_id for span in session.spans}
    roots: list[SpanRecord] = []
    for span in session.spans:
        if span.parent_id is None or span.parent_id not in known:
            roots.append(span)
        else:
            by_parent.setdefault(span.parent_id, []).append(span)

    coverage = profile_coverage(session)
    lines = [
        f"trace {session.name}: wall {session.wall_seconds:.4f}s, "
        f"{len(session.spans)} spans, {len(session.events)} events, "
        f"coverage {100.0 * coverage:.1f}%"
    ]
    header = (
        f"{'span':{_LABEL_WIDTH}s}{'seconds':>11s}{'share':>8s}{'count':>7s}"
    )
    lines.append(header)
    root_nodes = _aggregate(roots, by_parent)
    total = sum(node.seconds for node in root_nodes.values())
    for node in sorted(root_nodes.values(), key=lambda n: -n.seconds):
        _render(node, total, 0, lines)

    if session.counters:
        lines.append("counters:")
        for name in sorted(session.counters):
            lines.append(f"  {name} = {session.counters[name]:g}")
    if session.gauges:
        lines.append("gauges:")
        for name in sorted(session.gauges):
            lines.append(f"  {name} = {session.gauges[name]:g}")
    if session.events:
        tally: dict[str, int] = {}
        for event in session.events:
            tally[event.name] = tally.get(event.name, 0) + 1
        lines.append("events:")
        for name in sorted(tally):
            lines.append(f"  {name} x {tally[name]}")
    return "\n".join(lines)
