"""Persistent run registry: append-only JSONL history of traced runs.

A trace file answers "what happened in this run"; the registry answers
"what has been happening across runs".  Every registered run is one
JSON line holding the durable facts of a session — trace header
(name, wall seconds), per-span-name stage timings, counters, gauges,
the health verdicts of :func:`repro.obs.health.evaluate_health`, and a
content fingerprint of whatever configuration/data identity the caller
supplies — so regressions can be localised to "the first run where
``gram_conditioning`` went warn" without re-running anything.

The file format is append-only JSONL (one :class:`RunRecord` per
line), the same durability model as the trace files themselves:
corrupt-resistant, mergeable with ``cat``, and diffable line-by-line.
The default location is ``.geoalign/registry.jsonl`` under the current
directory, overridable with the ``REPRO_REGISTRY`` environment
variable or an explicit path (the CLI's ``--registry FILE``).

Fingerprints are computed through :mod:`repro.cache`'s content hashing
(imported lazily — :mod:`repro.cache` itself imports the tracing core,
so a module-level import here would cycle).
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.errors import ValidationError
from repro.obs.health import HealthReport
from repro.obs.trace import Trace

__all__ = [
    "RunRecord",
    "RunRegistry",
    "record_from_trace",
    "default_registry_path",
]

#: Default registry location, relative to the working directory.
DEFAULT_REGISTRY = os.path.join(".geoalign", "registry.jsonl")

#: Hex characters of the content fingerprint used as the run id.
RUN_ID_LENGTH = 12


def default_registry_path() -> str:
    """Registry path: ``$REPRO_REGISTRY`` or ``.geoalign/registry.jsonl``."""
    return os.environ.get("REPRO_REGISTRY", DEFAULT_REGISTRY)


@dataclass(frozen=True)
class RunRecord:
    """One registered run: the durable facts of a traced session.

    Attributes
    ----------
    run_id:
        Content-fingerprint prefix identifying the run; identical
        re-runs of a deterministic pipeline share an id, which is a
        feature — the registry listing shows them as the same work.
    created_at:
        UTC ISO-8601 registration timestamp (bookkeeping, not a
        measured duration — the ``wallclock`` lint rule governs
        measurement paths, not provenance stamps).
    trace_name:
        Name of the recorded session.
    wall_seconds:
        Session wall time.
    status:
        Overall health verdict (``ok``/``warn``/``fail``), or ``"-"``
        when the run was registered without a health evaluation.
    stages:
        Per-span-name total seconds (every distinct span name in the
        session, so ``obs diff`` can compare any stage across runs).
    counters, gauges:
        The session's counter and gauge registries.
    health:
        Mapping of check name to verdict string.
    fingerprint:
        Full content fingerprint of the run's identity (trace name
        plus caller-supplied config/data fingerprints).
    meta:
        Caller-supplied context (CLI argv, dataset name, scale, ...).
    """

    run_id: str
    created_at: str
    trace_name: str
    wall_seconds: float
    status: str
    stages: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    health: dict[str, str] = field(default_factory=dict)
    fingerprint: str = ""
    meta: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "created_at": self.created_at,
            "trace_name": self.trace_name,
            "wall_seconds": self.wall_seconds,
            "status": self.status,
            "stages": dict(self.stages),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "health": dict(self.health),
            "fingerprint": self.fingerprint,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunRecord":
        def _float_map(key: str) -> dict[str, float]:
            raw = payload.get(key) or {}
            if not isinstance(raw, dict):
                raise ValidationError(f"run record {key!r} must be a mapping")
            return {str(k): float(v) for k, v in raw.items()}

        health_raw = payload.get("health") or {}
        meta_raw = payload.get("meta") or {}
        if not isinstance(health_raw, dict) or not isinstance(meta_raw, dict):
            raise ValidationError("run record health/meta must be mappings")
        return cls(
            run_id=str(payload["run_id"]),
            created_at=str(payload.get("created_at", "")),
            trace_name=str(payload.get("trace_name", "trace")),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            status=str(payload.get("status", "-")),
            stages=_float_map("stages"),
            counters=_float_map("counters"),
            gauges=_float_map("gauges"),
            health={str(k): str(v) for k, v in health_raw.items()},
            fingerprint=str(payload.get("fingerprint", "")),
            meta=dict(meta_raw),
        )

    def summary_line(self) -> str:
        """One listing row: id, verdict, name, wall time, timestamp."""
        return (
            f"{self.run_id:>{RUN_ID_LENGTH}s}  {self.status:>4s}  "
            f"{self.wall_seconds:9.3f}s  {self.created_at:25s}  "
            f"{self.trace_name}"
        )


def _stage_totals(session: Trace) -> dict[str, float]:
    """Total seconds per distinct span name, in first-open order."""
    return {
        name: session.span_seconds(name) for name in session.span_names()
    }


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def record_from_trace(
    session: Trace,
    report: HealthReport | None = None,
    meta: Mapping[str, object] | None = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from one traced session.

    Parameters
    ----------
    session:
        A live or re-read :class:`Trace`.
    report:
        Optional health evaluation; its verdicts and overall status are
        folded into the record.
    meta:
        Caller context (argv, dataset, scale ...); every value takes
        part in the run fingerprint, so two runs with different configs
        can never share an id.
    """
    # Lazy: repro.cache imports the tracing core at module level, so a
    # top-level import here would close an import cycle through
    # repro.obs.
    from repro.cache import combine_fingerprints

    meta_dict: dict[str, object] = dict(meta) if meta else {}
    fingerprint = combine_fingerprints(
        "run",
        session.name,
        repr(round(session.wall_seconds, 9)),
        repr(sorted(session.counters.items())),
        repr(sorted(session.gauges.items())),
        repr(sorted((k, repr(v)) for k, v in meta_dict.items())),
    )
    return RunRecord(
        run_id=fingerprint[:RUN_ID_LENGTH],
        created_at=_utc_now(),
        trace_name=session.name,
        wall_seconds=session.wall_seconds,
        status=report.status if report is not None else "-",
        stages=_stage_totals(session),
        counters=dict(session.counters),
        gauges=dict(session.gauges),
        health=report.verdicts() if report is not None else {},
        fingerprint=fingerprint,
        meta=meta_dict,
    )


class RunRegistry:
    """Append-only JSONL store of :class:`RunRecord` lines.

    Parameters
    ----------
    path:
        Registry file; parent directories are created on first append.
        Defaults to :func:`default_registry_path`.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path if path is not None else default_registry_path()

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creating the file and parents); returns it."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return record

    def load(self) -> list[RunRecord]:
        """Every registered run, oldest first ([] for a missing file)."""
        if not os.path.exists(self.path):
            return []
        records: list[RunRecord] = []
        with open(self.path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValidationError(
                        f"{self.path}:{line_number}: not valid JSON ({exc})"
                    ) from exc
                if not isinstance(parsed, dict):
                    raise ValidationError(
                        f"{self.path}:{line_number}: expected a JSON object"
                    )
                records.append(RunRecord.from_dict(parsed))
        return records

    def get(self, run_id: str) -> RunRecord:
        """The newest record whose id starts with ``run_id``.

        Newest-first resolution means a re-registered deterministic run
        resolves to its latest registration, and short unambiguous
        prefixes work like abbreviated VCS hashes.
        """
        if not run_id:
            raise ValidationError("run_id must be non-empty")
        for record in reversed(self.load()):
            if record.run_id.startswith(run_id):
                return record
        raise ValidationError(
            f"no run with id prefix {run_id!r} in {self.path}"
        )

    def last(self, n: int = 10) -> list[RunRecord]:
        """The most recent ``n`` records, oldest of them first."""
        if n < 1:
            raise ValidationError(f"n must be positive, got {n}")
        return self.load()[-n:]

    def to_text(self, n: int = 10) -> str:
        """Listing of the most recent ``n`` runs (newest last)."""
        records = self.last(n)
        if not records:
            return f"registry {self.path}: no runs recorded"
        lines = [
            f"registry {self.path}: showing {len(records)} of "
            f"{len(self.load())} runs",
            f"{'run':>{RUN_ID_LENGTH}s}  {'verd':>4s}  {'wall':>10s}  "
            f"{'registered (UTC)':25s}  trace",
        ]
        lines.extend(record.summary_line() for record in records)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RunRegistry({self.path!r})"
