"""JSON-lines export (and re-import) of :class:`~repro.obs.trace.Trace`.

The trace file format (consumed by ``--trace FILE``, the ``obs``
analysis subcommands and the test suite) is one JSON object per line,
in three record types:

``{"type": "trace", ...}``
    Session header: name, wall seconds, counters and gauges.  Always
    the first line of a session; several sessions may be appended to
    one file (the CLI's ``all`` command writes one per figure).
``{"type": "span", ...}``
    One span: ``id``, ``parent`` (``null`` at the root), ``name``,
    ``t0``/``t1`` (seconds relative to the session start), ``seconds``,
    ``status`` and ``attrs``.  Spans are sorted by start time, so a
    parent always precedes its children.
``{"type": "event", ...}``
    One event: ``id``, ``span`` (the owning span id), ``name``, ``t``
    and ``fields``.

Every value is JSON-safe: numpy scalars are unwrapped to their Python
equivalents via ``.item()`` (so an ``np.int64`` span attribute stays a
number, not a repr string); non-scalar span attributes and event fields
are serialised via ``repr``.

:func:`read_trace_jsonl` is the inverse of :func:`write_trace_jsonl`:
it reconstructs the recorded sessions (one :class:`Trace` per header
line) with span hierarchy, events, counters and gauges intact, so a
trace written by one process can be analysed — health-checked, diffed,
registered — by another.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import ValidationError
from repro.obs.trace import EventRecord, SpanRecord, Trace

__all__ = [
    "trace_to_records",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "records_to_traces",
]


def _json_safe(value: object) -> object:
    """Scalars pass through; numpy scalars unwrap; the rest is repr'd.

    Numpy scalar types (``np.int64``, ``np.float32``, ``np.bool_``, …)
    are *not* instances of ``int``/``float``/``bool``, so without the
    ``.item()`` unwrap they would fall through to ``repr`` and a count
    of 12 would serialise as the string ``"12"`` — silently de-typing
    every numpy-valued attribute in the trace.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return _json_safe(value.item())
    return repr(value)


def _safe_mapping(mapping: dict[str, object]) -> dict[str, object]:
    return {str(key): _json_safe(value) for key, value in mapping.items()}


def trace_to_records(session: Trace) -> list[dict[str, object]]:
    """The session as a list of JSON-safe record dicts (header first)."""
    origin = session.started
    records: list[dict[str, object]] = [
        {
            "type": "trace",
            "name": session.name,
            "wall_seconds": session.wall_seconds,
            "spans": len(session.spans),
            "events": len(session.events),
            "counters": _safe_mapping(dict(session.counters)),
            "gauges": _safe_mapping(dict(session.gauges)),
        }
    ]
    for span in sorted(session.spans, key=lambda s: (s.started, s.span_id)):
        ended = span.ended if span.ended is not None else span.started
        records.append(
            {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "t0": span.started - origin,
                "t1": ended - origin,
                "seconds": span.seconds,
                "status": span.status,
                "attrs": _safe_mapping(span.attrs),
            }
        )
    for event in session.events:
        records.append(
            {
                "type": "event",
                "id": event.event_id,
                "span": event.span_id,
                "name": event.name,
                "t": event.at - origin,
                "fields": _safe_mapping(event.fields),
            }
        )
    return records


def trace_to_jsonl(session: Trace) -> str:
    """The session as JSON-lines text (trailing newline included)."""
    lines = [
        json.dumps(record, sort_keys=True)
        for record in trace_to_records(session)
    ]
    return "\n".join(lines) + "\n"


def write_trace_jsonl(
    session: Trace, path: str, append: bool = False
) -> str:
    """Write (or append) the session's JSON-lines records to ``path``.

    Appends go through one ``os.write`` on an ``O_APPEND`` descriptor:
    POSIX makes each such write land at the (current) end of file as a
    unit, so concurrent writers -- shard workers or parallel CLI runs
    tracing into one shared registry file -- interleave at *session*
    granularity.  No torn lines, no half records, every session block
    contiguous; buffered ``open(...).write`` gives none of that once
    the text outgrows the stdio buffer.
    """
    data = trace_to_jsonl(session).encode("utf-8")
    flags = os.O_WRONLY | os.O_CREAT | (
        os.O_APPEND if append else os.O_TRUNC
    )
    descriptor = os.open(path, flags, 0o644)
    try:
        view = memoryview(data)
        while view:  # pragma: no branch - regular files write whole
            view = view[os.write(descriptor, view) :]
    finally:
        os.close(descriptor)
    return path


def _session_from_header(header: dict[str, object]) -> Trace:
    """A :class:`Trace` shell rebuilt from one ``"trace"`` record.

    Reconstructed sessions anchor their timeline at 0.0, matching the
    relative ``t0``/``t1`` values in the file — re-exporting one yields
    byte-identical records, which is the round-trip contract the test
    suite pins.
    """
    session = Trace(str(header.get("name", "trace")))
    session.started = 0.0
    session.ended = float(header.get("wall_seconds", 0.0))  # type: ignore[arg-type]
    counters = header.get("counters") or {}
    gauges = header.get("gauges") or {}
    if not isinstance(counters, dict) or not isinstance(gauges, dict):
        raise ValidationError("trace header counters/gauges must be mappings")
    session.counters = {str(k): float(v) for k, v in counters.items()}
    session.gauges = {str(k): float(v) for k, v in gauges.items()}
    return session


def records_to_traces(records: list[dict[str, object]]) -> list[Trace]:
    """Rebuild :class:`Trace` sessions from parsed trace records.

    One session per ``"trace"`` header, in file order; span and event
    records attach to the most recent header (the append layout
    ``write_trace_jsonl`` produces).
    """
    sessions: list[Trace] = []
    for record in records:
        kind = record.get("type")
        if kind == "trace":
            sessions.append(_session_from_header(record))
            continue
        if not sessions:
            raise ValidationError(
                "trace file is malformed: span/event record before any "
                "trace header"
            )
        session = sessions[-1]
        if kind == "span":
            parent = record.get("parent")
            span = SpanRecord(
                span_id=int(record["id"]),  # type: ignore[arg-type]
                parent_id=None if parent is None else int(parent),  # type: ignore[arg-type]
                name=str(record["name"]),
                started=float(record["t0"]),  # type: ignore[arg-type]
                ended=float(record["t1"]),  # type: ignore[arg-type]
                attrs=dict(record.get("attrs") or {}),  # type: ignore[call-overload]
                status=str(record.get("status", "ok")),
            )
            session.spans.append(span)
        elif kind == "event":
            span_id = record.get("span")
            event = EventRecord(
                event_id=int(record["id"]),  # type: ignore[arg-type]
                span_id=None if span_id is None else int(span_id),  # type: ignore[arg-type]
                name=str(record["name"]),
                at=float(record["t"]),  # type: ignore[arg-type]
                fields=dict(record.get("fields") or {}),  # type: ignore[call-overload]
            )
            session.events.append(event)
        else:
            raise ValidationError(
                f"trace file contains unknown record type {kind!r}"
            )
    return sessions


def read_trace_jsonl(path: str) -> list[Trace]:
    """Read every session appended to a trace JSONL file.

    The inverse of :func:`write_trace_jsonl`: each ``"trace"`` header
    opens a new reconstructed :class:`Trace`, and subsequent span/event
    lines populate it.  Timestamps come back relative to each session's
    start (``Trace.started`` is 0.0), so durations, hierarchy queries
    and re-export all behave exactly as on the original object.
    """
    records: list[dict[str, object]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{line_number}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(parsed, dict):
                raise ValidationError(
                    f"{path}:{line_number}: expected a JSON object"
                )
            records.append(parsed)
    if not records:
        raise ValidationError(f"{path}: empty trace file")
    return records_to_traces(records)
