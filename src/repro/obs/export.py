"""JSON-lines export of a :class:`~repro.obs.trace.Trace` session.

The trace file format (consumed by ``--trace FILE`` and the test suite)
is one JSON object per line, in three record types:

``{"type": "trace", ...}``
    Session header: name, wall seconds, counters and gauges.  Always
    the first line of a session; several sessions may be appended to
    one file (the CLI's ``all`` command writes one per figure).
``{"type": "span", ...}``
    One span: ``id``, ``parent`` (``null`` at the root), ``name``,
    ``t0``/``t1`` (seconds relative to the session start), ``seconds``,
    ``status`` and ``attrs``.  Spans are sorted by start time, so a
    parent always precedes its children.
``{"type": "event", ...}``
    One event: ``id``, ``span`` (the owning span id), ``name``, ``t``
    and ``fields``.

Every value is JSON-safe: non-scalar span attributes and event fields
are serialised via ``repr``.
"""

from __future__ import annotations

import json

from repro.obs.trace import Trace

__all__ = ["trace_to_records", "trace_to_jsonl", "write_trace_jsonl"]


def _json_safe(value: object) -> object:
    """Scalars pass through; anything else becomes its repr."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _safe_mapping(mapping: dict[str, object]) -> dict[str, object]:
    return {str(key): _json_safe(value) for key, value in mapping.items()}


def trace_to_records(session: Trace) -> list[dict[str, object]]:
    """The session as a list of JSON-safe record dicts (header first)."""
    origin = session.started
    records: list[dict[str, object]] = [
        {
            "type": "trace",
            "name": session.name,
            "wall_seconds": session.wall_seconds,
            "spans": len(session.spans),
            "events": len(session.events),
            "counters": dict(session.counters),
            "gauges": dict(session.gauges),
        }
    ]
    for span in sorted(session.spans, key=lambda s: (s.started, s.span_id)):
        ended = span.ended if span.ended is not None else span.started
        records.append(
            {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "t0": span.started - origin,
                "t1": ended - origin,
                "seconds": span.seconds,
                "status": span.status,
                "attrs": _safe_mapping(span.attrs),
            }
        )
    for event in session.events:
        records.append(
            {
                "type": "event",
                "id": event.event_id,
                "span": event.span_id,
                "name": event.name,
                "t": event.at - origin,
                "fields": _safe_mapping(event.fields),
            }
        )
    return records


def trace_to_jsonl(session: Trace) -> str:
    """The session as JSON-lines text (trailing newline included)."""
    lines = [
        json.dumps(record, sort_keys=True)
        for record in trace_to_records(session)
    ]
    return "\n".join(lines) + "\n"


def write_trace_jsonl(
    session: Trace, path: str, append: bool = False
) -> str:
    """Write (or append) the session's JSON-lines records to ``path``."""
    mode = "a" if append else "w"
    with open(path, mode) as handle:
        handle.write(trace_to_jsonl(session))
    return path
