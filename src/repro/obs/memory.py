"""Opt-in memory observability: tracemalloc peak as a trace gauge.

Peak resident allocation is the metric the paper's scalability story
quietly depends on (the union-sparsity value matrix of
:class:`~repro.core.batch.ReferenceStack` is the dominant allocation
at full scale), but measuring it costs real overhead — ``tracemalloc``
slows allocation-heavy code by 2-30 % — so it is strictly opt-in:
nothing in this module runs unless the caller asks (the CLI's
``--mem``, the benchmark suite's ``measure_memory`` helper).

:func:`track_memory` wraps a block, records the tracemalloc peak into
the returned handle, and — when a trace session is active — publishes
it as the ``mem.peak_bytes`` gauge (high-water mark, so nested or
repeated blocks keep the worst). The benchmark harness persists the
same number under a ``memory`` section in ``BENCH_*.json``, where the
regression gate compares it like any other metric.
"""

from __future__ import annotations

import tracemalloc
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.trace import set_gauge_max, tracing_active

__all__ = ["MemoryHandle", "track_memory"]

#: Gauge under which the tracemalloc peak is published.
PEAK_GAUGE = "mem.peak_bytes"


class MemoryHandle:
    """Peak-allocation carrier for :func:`track_memory`.

    ``peak_bytes`` is 0.0 until the block exits (and stays 0.0 when
    tracking was disabled).
    """

    __slots__ = ("peak_bytes",)

    def __init__(self) -> None:
        self.peak_bytes = 0.0

    @property
    def peak_mib(self) -> float:
        """Peak in mebibytes."""
        return self.peak_bytes / (1024.0 * 1024.0)

    def __repr__(self) -> str:
        return f"MemoryHandle(peak_bytes={self.peak_bytes:.0f})"


@contextmanager
def track_memory(enabled: bool = True) -> Iterator[MemoryHandle]:
    """Measure the block's tracemalloc allocation peak (opt-in).

    Parameters
    ----------
    enabled:
        ``False`` makes the whole context a no-op (the handle stays at
        0.0), so call sites can thread a ``--mem`` flag straight
        through without branching.

    Notes
    -----
    If tracemalloc is already tracing (an enclosing :func:`track_memory`
    or a debugger), the existing tracer is reused and left running;
    only the innermost-started context stops it.  The peak is measured
    relative to this block via ``tracemalloc.reset_peak``, so nested
    handles report their own block's peak, not the process lifetime's.
    """
    handle = MemoryHandle()
    if not enabled:
        yield handle
        return
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        yield handle
    finally:
        _, peak = tracemalloc.get_traced_memory()
        handle.peak_bytes = float(peak)
        if started_here:
            tracemalloc.stop()
        if tracing_active():
            set_gauge_max(PEAK_GAUGE, handle.peak_bytes)
