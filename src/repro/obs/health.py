"""Numerical-health monitors: turn a trace (and a fitted model) into a verdict.

A :class:`Trace` full of spans and gauges is raw material; this module
is the analysis layer that evaluates it into a structured
:class:`HealthReport` — ok / warn / fail per check, against declared
thresholds.  The catalogue covers exactly the invariants GeoAlign's
correctness rests on (see ``docs/observability.md`` for the full
table):

* **volume preservation** (paper Eq. 16) — the estimated DM's row sums
  must carry the objective's source aggregates to float rounding;
* **simplex feasibility** (Eq. 15) — learned weights non-negative and
  summing to one;
* **Gram conditioning** — near-collinear reference designs make the
  weight solution meaningless long before it crashes;
* **solver fallback / non-convergence rates** — silent degradation of
  the active-set path;
* **weight degeneracy** — effective number of references
  (:func:`repro.core.diagnostics.effective_references`);
* **cache efficiency** and **trace coverage** — the operational side.

Checks read the ``health.*`` gauges the estimators emit into every
trace (worst-case per session via ``set_gauge_max`` /
``set_gauge_min``), plus the solver/cache counters, so a trace JSONL
read back from disk months later still health-checks without rerunning
anything.  When the fitted model is at hand,
:func:`evaluate_health`'s ``model=`` overlay recomputes the model-side
gauges directly from its fitted state.

The registry is declarative and open: :func:`register_check` adds a
custom monitor; :func:`all_checks` lists the catalogue.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.diagnostics import (
    effective_references,
    gram_condition_number,
    simplex_violation,
    volume_residual,
    weight_entropy,
)
from repro.errors import ValidationError
from repro.obs.profile import profile_coverage
from repro.obs.trace import Trace

__all__ = [
    "HealthCheck",
    "CheckResult",
    "HealthReport",
    "all_checks",
    "register_check",
    "evaluate_health",
    "model_gauges",
    "OK",
    "WARN",
    "FAIL",
    "SKIP",
]

OK = "ok"
WARN = "warn"
FAIL = "fail"
SKIP = "skip"

#: Severity order for aggregating an overall verdict.
_SEVERITY = {SKIP: 0, OK: 1, WARN: 2, FAIL: 3}

#: Cache-efficiency verdicts need a sample: a fresh run with one cold
#: miss is normal, not a warning.  Below this many lookups the check
#: reports ``skip``.
MIN_CACHE_LOOKUPS = 4


@dataclass(frozen=True)
class HealthCheck:
    """One declarative monitor: a value extractor plus thresholds.

    Attributes
    ----------
    name:
        Stable check identifier (``volume_preservation``, ...).
    description:
        One-line human summary of what the check guards.
    formula:
        How the value is computed, for the report and the docs.
    direction:
        ``"high"`` — larger values are worse (residuals, rates);
        ``"low"`` — smaller values are worse (coverage, hit rate,
        effective references).
    warn, fail:
        Thresholds; crossing ``warn`` (strictly) yields a warning,
        crossing ``fail`` a failure.  ``None`` disables that level.
    extract:
        ``Trace -> float | None``; ``None`` means the trace carries no
        data for this check and the result is ``skip``.
    """

    name: str
    description: str
    formula: str
    direction: str
    warn: float | None
    fail: float | None
    extract: Callable[[Trace], float | None]

    def __post_init__(self) -> None:
        if self.direction not in ("high", "low"):
            raise ValidationError(
                f"check {self.name!r}: direction must be 'high' or "
                f"'low', got {self.direction!r}"
            )

    def _crossed(self, value: float, threshold: float | None) -> bool:
        if threshold is None:
            return False
        if self.direction == "high":
            return value > threshold
        return value < threshold

    def evaluate(self, session: Trace) -> "CheckResult":
        """Run the check against one trace session."""
        value = self.extract(session)
        if value is None:
            status = SKIP
        elif self._crossed(value, self.fail):
            status = FAIL
        elif self._crossed(value, self.warn):
            status = WARN
        else:
            status = OK
        return CheckResult(
            name=self.name,
            status=status,
            value=value,
            warn=self.warn,
            fail=self.fail,
            direction=self.direction,
            description=self.description,
            formula=self.formula,
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one health check on one trace."""

    name: str
    status: str
    value: float | None
    warn: float | None
    fail: float | None
    direction: str
    description: str
    formula: str

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "value": self.value,
            "warn": self.warn,
            "fail": self.fail,
            "direction": self.direction,
            "description": self.description,
            "formula": self.formula,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CheckResult":
        value = payload.get("value")
        return cls(
            name=str(payload["name"]),
            status=str(payload["status"]),
            value=None if value is None else float(value),  # type: ignore[arg-type]
            warn=_opt_float(payload.get("warn")),
            fail=_opt_float(payload.get("fail")),
            direction=str(payload.get("direction", "high")),
            description=str(payload.get("description", "")),
            formula=str(payload.get("formula", "")),
        )


def _opt_float(value: object) -> float | None:
    return None if value is None else float(value)  # type: ignore[arg-type]


class HealthReport:
    """All check results for one traced run, plus an overall verdict."""

    def __init__(self, trace_name: str, checks: list[CheckResult]) -> None:
        self.trace_name = trace_name
        self.checks = checks

    @property
    def status(self) -> str:
        """Worst status across checks (``ok`` for an empty report)."""
        if not self.checks:
            return OK
        worst = max(self.checks, key=lambda c: _SEVERITY[c.status])
        return worst.status if _SEVERITY[worst.status] > 1 else OK

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if c.status == FAIL]

    @property
    def warnings(self) -> list[CheckResult]:
        return [c for c in self.checks if c.status == WARN]

    @property
    def ok(self) -> bool:
        """True when no check failed (warnings and skips tolerated)."""
        return not self.failures

    def verdicts(self) -> dict[str, str]:
        """Mapping of check name to status string."""
        return {c.name: c.status for c in self.checks}

    def get(self, name: str) -> CheckResult:
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(name)

    def to_dict(self) -> dict[str, object]:
        return {
            "trace": self.trace_name,
            "status": self.status,
            "checks": [c.to_dict() for c in self.checks],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "HealthReport":
        checks_raw = payload.get("checks", [])
        if not isinstance(checks_raw, list):
            raise ValidationError("health report 'checks' must be a list")
        return cls(
            trace_name=str(payload.get("trace", "trace")),
            checks=[CheckResult.from_dict(c) for c in checks_raw],
        )

    def to_text(self) -> str:
        """Render the report as the ``obs report`` table."""
        counts = {OK: 0, WARN: 0, FAIL: 0, SKIP: 0}
        for check in self.checks:
            counts[check.status] += 1
        lines = [
            f"health report: {self.trace_name} — verdict {self.status.upper()}"
            f" ({counts[OK]} ok, {counts[WARN]} warn, {counts[FAIL]} fail, "
            f"{counts[SKIP]} skip)",
            f"{'check':26s}{'status':>8s}{'value':>14s}"
            f"{'warn':>12s}{'fail':>12s}",
        ]
        for check in self.checks:
            value = "-" if check.value is None else f"{check.value:.6g}"
            warn = "-" if check.warn is None else f"{check.warn:g}"
            fail = "-" if check.fail is None else f"{check.fail:g}"
            arrow = ">" if check.direction == "high" else "<"
            lines.append(
                f"{check.name:26s}{check.status:>8s}{value:>14s}"
                f"{arrow + warn:>12s}{arrow + fail:>12s}"
            )
        for check in self.checks:
            if check.status in (WARN, FAIL):
                lines.append(
                    f"  {check.status.upper()} {check.name}: "
                    f"{check.description} [{check.formula}]"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"HealthReport({self.trace_name!r}, status={self.status!r}, "
            f"checks={len(self.checks)})"
        )


# ---------------------------------------------------------------------------
# extractors
# ---------------------------------------------------------------------------


def _gauge(name: str) -> Callable[[Trace], float | None]:
    def extract(session: Trace) -> float | None:
        return session.gauges.get(name)

    return extract


def _solver_rate(counter: str) -> Callable[[Trace], float | None]:
    def extract(session: Trace) -> float | None:
        solves = session.counters.get("solver.solves", 0.0)
        if solves <= 0.0:
            return None
        return session.counters.get(counter, 0.0) / solves

    return extract


def _cache_hit_rate(session: Trace) -> float | None:
    hits = session.counters.get("cache.hits", 0.0)
    misses = session.counters.get("cache.misses", 0.0)
    lookups = hits + misses
    if lookups < MIN_CACHE_LOOKUPS:
        return None
    return hits / lookups


def _trace_coverage(session: Trace) -> float | None:
    if not session.spans or session.wall_seconds <= 0.0:
        return None
    return profile_coverage(session)


# ---------------------------------------------------------------------------
# the catalogue
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, HealthCheck] = {}


def register_check(check: HealthCheck) -> HealthCheck:
    """Add (or replace) a monitor in the catalogue; returns it."""
    _REGISTRY[check.name] = check
    return check


def all_checks() -> tuple[HealthCheck, ...]:
    """The registered monitors, in registration order."""
    return tuple(_REGISTRY.values())


register_check(
    HealthCheck(
        name="volume_preservation",
        description=(
            "estimated DM row sums must carry the objective's source "
            "aggregates exactly where the references give the rescale "
            "anything to scale (paper Eq. 16)"
        ),
        formula="max_i |rowsum_i - a_i| / max_j a_j over covered rows",
        direction="high",
        warn=1e-9,
        fail=1e-6,
        extract=_gauge("health.volume_residual_max"),
    )
)
register_check(
    HealthCheck(
        name="source_coverage",
        description=(
            "objective mass sitting in source units where no reference "
            "carries any -- the rescale cannot place it anywhere"
        ),
        formula="sum(a_i over zero-denominator rows) / sum(a)",
        direction="high",
        warn=0.05,
        fail=0.5,
        extract=_gauge("health.uncovered_mass_max"),
    )
)
register_check(
    HealthCheck(
        name="shard_merge_preservation",
        description=(
            "the sharded engine's merged partial target aggregates must "
            "re-aggregate to the monolithic Eq. 17 pass; anything beyond "
            "reassociation noise means a shard boundary dropped or "
            "double-counted a column"
        ),
        formula="max |merged - reaggregated| / max |reaggregated|",
        direction="high",
        warn=1e-9,
        fail=1e-6,
        extract=_gauge("health.shard_merge_residual_max"),
    )
)
register_check(
    HealthCheck(
        name="simplex_feasibility",
        description=(
            "learned blend weights must stay on the probability "
            "simplex (paper Eq. 15)"
        ),
        formula="max(|sum(w) - 1|, max(-w, 0))",
        direction="high",
        warn=1e-9,
        fail=1e-6,
        extract=_gauge("health.simplex_violation_max"),
    )
)
register_check(
    HealthCheck(
        name="gram_conditioning",
        description=(
            "near-collinear reference designs make the weight solve "
            "ill-determined"
        ),
        formula="cond_2(A^T A), worst fit of the run",
        direction="high",
        warn=1e8,
        fail=1e12,
        extract=_gauge("health.gram_condition_max"),
    )
)
register_check(
    HealthCheck(
        name="solver_fallbacks",
        description=(
            "active-set solves handing off to projected gradient "
            "(degenerate cycling) should stay rare"
        ),
        formula="solver.fallbacks / solver.solves",
        direction="high",
        warn=0.1,
        fail=0.9,
        extract=_solver_rate("solver.fallbacks"),
    )
)
register_check(
    HealthCheck(
        name="solver_convergence",
        description=(
            "iterative solves exhausting their iteration cap without "
            "a convergence certificate"
        ),
        formula="solver.nonconverged / solver.solves",
        direction="high",
        warn=0.0,
        fail=0.25,
        extract=_solver_rate("solver.nonconverged"),
    )
)
register_check(
    HealthCheck(
        name="weight_degeneracy",
        description=(
            "effective number of references collapsing toward 1 means "
            "one reference carries everything"
        ),
        formula="min over fits of exp(entropy(w))",
        direction="low",
        warn=1.001,
        fail=None,
        extract=_gauge("health.effective_references_min"),
    )
)
register_check(
    HealthCheck(
        name="cache_efficiency",
        description=(
            "pipeline-cache hit rate (skipped below "
            f"{MIN_CACHE_LOOKUPS} lookups)"
        ),
        formula="cache.hits / (cache.hits + cache.misses)",
        direction="low",
        warn=0.05,
        fail=None,
        extract=_cache_hit_rate,
    )
)
register_check(
    HealthCheck(
        name="trace_coverage",
        description=(
            "fraction of session wall time accounted for by recorded "
            "root spans"
        ),
        formula="sum(root span seconds) / wall_seconds",
        direction="low",
        warn=0.95,
        fail=0.25,
        extract=_trace_coverage,
    )
)
register_check(
    HealthCheck(
        name="stack_density",
        description=(
            "stored fraction of the dense (k, t) design-matrix grid the "
            "reference stack actually materialises; informational only — "
            "high density means the dense BLAS kernels win, not that "
            "anything is wrong"
        ),
        formula="nnz / (n_references * n_targets)",
        direction="high",
        warn=None,
        fail=None,
        extract=_gauge("health.stack_density"),
    )
)


# ---------------------------------------------------------------------------
# model overlay
# ---------------------------------------------------------------------------


def model_gauges(model: object) -> dict[str, float]:
    """The ``health.*`` gauges recomputed from a fitted estimator.

    Accepts a fitted :class:`~repro.core.geoalign.GeoAlign`,
    :class:`~repro.core.batch.BatchAligner` or
    :class:`~repro.core.shard.ShardedAligner` (duck-typed on fitted
    attributes, so this module never imports the estimators).  Used by
    :func:`evaluate_health`'s ``model=`` overlay when the model object
    is still at hand, and by tests that pin gauge == recomputation.
    """
    gauges: dict[str, float] = {}
    stack = getattr(model, "stack_", None)
    weights = getattr(model, "weights_", None)
    if weights is None:
        raise ValidationError(
            "model_gauges needs a fitted estimator (call fit() first)"
        )
    weight_matrix = np.atleast_2d(np.asarray(weights, dtype=float))
    gauges["health.simplex_violation_max"] = simplex_violation(weight_matrix)
    gauges["health.effective_references_min"] = min(
        effective_references(row) for row in weight_matrix
    )
    gauges["health.weight_entropy_min"] = min(
        weight_entropy(row) for row in weight_matrix
    )
    if stack is not None:  # BatchAligner / ShardedAligner
        gauges["health.gram_condition_max"] = gram_condition_number(
            stack.gram
        )
        gauges["health.stack_density"] = stack.dm_stack.density
        gauges["health.stack_nnz"] = float(stack.dm_stack.nnz)
        gauges["health.stack_resident_bytes"] = float(
            stack.dm_stack.resident_bytes
        )
        objectives = model.objectives_  # type: ignore[attr-defined]
        scaled = model._compute_scaled_values()  # type: ignore[attr-defined]
        # The sharded engine records its reduce-phase invariant; surface
        # it so health reports gate the merge, not just the rescale.
        merge_residual = getattr(model, "merge_residual_", None)
        if merge_residual is not None:
            gauges["health.shard_merge_residual_max"] = float(
                merge_residual
            )
        achieved = stack.row_sums(scaled)
        # A correct rescale leaves exactly the zero-denominator rows at
        # zero, so uncovered rows are inferred from the output; a
        # *tampered* rescale shows up as residual instead of coverage.
        uncovered = (achieved <= 0.0) & (objectives > 0.0)
        gauges["health.uncovered_mass_max"] = float(
            (
                np.where(uncovered, objectives, 0.0).sum(axis=1)
                / objectives.sum(axis=1)
            ).max()
        )
        masked = np.where(uncovered, 0.0, objectives)
        scale_per_attr = masked.max(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_attr = np.where(
                scale_per_attr > 0.0,
                np.abs(np.where(uncovered, 0.0, achieved) - masked).max(
                    axis=1
                )
                / scale_per_attr,
                0.0,
            )
        gauges["health.volume_residual_max"] = float(per_attr.max())
    else:  # scalar GeoAlign
        references = getattr(model, "references_", None)
        if references is None:
            raise ValidationError(
                "model_gauges needs a fitted estimator (call fit() first)"
            )
        normalize = bool(getattr(model, "normalize", True))
        design = np.column_stack(
            [
                ref.normalized_source() if normalize else ref.source_vector
                for ref in references
            ]
        )
        gauges["health.gram_condition_max"] = gram_condition_number(
            design.T @ design
        )
        estimated = model.predict_dm()  # type: ignore[attr-defined]
        achieved = np.asarray(estimated.row_sums(), dtype=float)
        objective = np.asarray(
            model.objective_source_,  # type: ignore[attr-defined]
            dtype=float,
        )
        uncovered = (achieved <= 0.0) & (objective > 0.0)
        gauges["health.uncovered_mass_max"] = float(
            objective[uncovered].sum() / objective.sum()
        )
        masked = np.where(uncovered, 0.0, objective)
        if masked.max() > 0.0:
            gauges["health.volume_residual_max"] = volume_residual(
                np.where(uncovered, 0.0, achieved), masked
            )
    return gauges


def evaluate_health(
    session: Trace,
    model: object | None = None,
    checks: Iterable[HealthCheck] | None = None,
) -> HealthReport:
    """Evaluate the monitor catalogue against one trace session.

    Parameters
    ----------
    session:
        A live :class:`Trace` or one reconstructed by
        :func:`repro.obs.export.read_trace_jsonl`.
    model:
        Optional fitted estimator; its :func:`model_gauges` overlay the
        trace's recorded gauges (the model is ground truth when both
        exist).
    checks:
        Monitors to run; defaults to the full registered catalogue.

    Returns
    -------
    HealthReport
    """
    if model is not None:
        overlay = Trace(session.name)
        overlay.started = session.started
        overlay.ended = session.ended
        overlay.spans = session.spans
        overlay.events = session.events
        overlay.counters = dict(session.counters)
        overlay.gauges = {**session.gauges, **model_gauges(model)}
        session = overlay
    selected = tuple(checks) if checks is not None else all_checks()
    return HealthReport(
        trace_name=session.name,
        checks=[check.evaluate(session) for check in selected],
    )
