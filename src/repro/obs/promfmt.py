"""Prometheus text exposition (format 0.0.4): encode, parse, histograms.

A dependency-free encoder shared by the serving layer (``/metrics``
content negotiation) and the CLI (``geoalign-repro obs prom``).  The
model mirrors the exposition format directly:

* :class:`Sample` — one ``name{labels} value`` line.
* :class:`MetricFamily` — one ``# HELP`` / ``# TYPE`` header plus its
  samples (for histograms: the ``_bucket``/``_sum``/``_count`` series).
* :func:`render_prometheus_text` — families to wire text.
* :func:`parse_prometheus_text` — wire text back to families, with the
  structural validation a scraper performs (known types, escaped
  labels, cumulative non-decreasing buckets ending in ``+Inf``).  The
  round-trip ``parse(render(f)) == f`` is pinned by the test suite.

:class:`Histogram` is the fixed-bucket observation store that replaces
the sample-window percentiles in ``repro.serve.metrics``: O(#buckets)
memory regardless of traffic, mergeable, and directly expositable.
Quantiles are estimated by linear interpolation within the owning
bucket and clamped to the observed maximum, so estimates never exceed
a real observation.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricFamily",
    "Sample",
    "format_sample_value",
    "parse_prometheus_text",
    "render_prometheus_text",
    "sanitize_metric_name",
]

#: Content-Type a 0.0.4 text exposition must be served under.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency bucket upper bounds (seconds).  Spans 100 µs – 10 s: the
#: serve benchmark's warm ``/predict`` sits near 1 ms, cold fits and
#: injected-fault retries near the top.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_VALID_TYPES = frozenset({"counter", "gauge", "histogram", "untyped"})
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted metric name onto the Prometheus charset.

    Dots (our namespace separator) and any other invalid character
    become underscores; a leading digit gains an underscore prefix.
    ``health.shard_merge_residual_max`` →
    ``health_shard_merge_residual_max``.
    """
    cleaned = "".join(
        ch if (ch.isalnum() and ch.isascii()) or ch in "_:" else "_"
        for ch in name
    )
    if not cleaned:
        raise ValidationError("metric name sanitised to empty string")
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def format_sample_value(value: float) -> str:
    """Render one sample value per the exposition grammar.

    Integral values print without an exponent or trailing ``.0`` (what
    scrapers emit for counters); infinities use the required
    ``+Inf``/``-Inf`` spelling.
    """
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    value: float
    labels: tuple[tuple[str, str], ...] = ()

    def render(self) -> str:
        if not _NAME_RE.match(self.name):
            raise ValidationError(
                f"invalid Prometheus metric name {self.name!r}"
            )
        label_text = ""
        if self.labels:
            for key, _ in self.labels:
                if not _LABEL_NAME_RE.match(key):
                    raise ValidationError(
                        f"invalid Prometheus label name {key!r}"
                    )
            inner = ",".join(
                f'{key}="{_escape_label_value(str(val))}"'
                for key, val in self.labels
            )
            label_text = "{" + inner + "}"
        return f"{self.name}{label_text} {format_sample_value(self.value)}"


@dataclass
class MetricFamily:
    """One ``# HELP``/``# TYPE`` block and its sample lines."""

    name: str
    kind: str
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def add(
        self, value: float, labels: tuple[tuple[str, str], ...] = (),
        suffix: str = "",
    ) -> None:
        self.samples.append(
            Sample(name=self.name + suffix, value=value, labels=labels)
        )


def render_prometheus_text(families: list[MetricFamily]) -> str:
    """Families to 0.0.4 wire text (trailing newline included)."""
    lines: list[str] = []
    for family in families:
        if family.kind not in _VALID_TYPES:
            raise ValidationError(
                f"unknown Prometheus metric type {family.kind!r} "
                f"for {family.name!r}"
            )
        if not _NAME_RE.match(family.name):
            raise ValidationError(
                f"invalid Prometheus metric name {family.name!r}"
            )
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            lines.append(sample.render())
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Parsing (scraper-side validation; pins the round-trip contract)
# ----------------------------------------------------------------------
def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_labels(text: str, line_no: int) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(text):
        match = re.match(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"', text[i:])
        if match is None:
            raise ValidationError(
                f"line {line_no}: malformed label pair near {text[i:]!r}"
            )
        name = match.group(1)
        i += match.end()
        value_chars: list[str] = []
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                value_chars.append(text[i : i + 2])
                i += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            i += 1
        else:
            raise ValidationError(
                f"line {line_no}: unterminated label value"
            )
        i += 1  # closing quote
        labels.append((name, _unescape("".join(value_chars))))
        rest = text[i:].lstrip()
        if rest.startswith(","):
            i = len(text) - len(rest) + 1
            continue
        if rest:
            raise ValidationError(
                f"line {line_no}: trailing garbage in label set: {rest!r}"
            )
        break
    return tuple(labels)


def _parse_value(text: str, line_no: int) -> float:
    token = text.strip().split()[0] if text.strip() else ""
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError as exc:
        raise ValidationError(
            f"line {line_no}: invalid sample value {token!r}"
        ) from exc


def _family_of(sample_name: str, families: dict[str, MetricFamily]) -> str:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base].kind == "histogram":
                return base
    return sample_name


def _check_histogram(family: MetricFamily) -> None:
    """Validate the cumulative-bucket invariants of one histogram family.

    Buckets are grouped by their non-``le`` labels so one family may
    carry several labelled series (one per endpoint)."""
    series: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]] = {}
    counts: dict[tuple[tuple[str, str], ...], float] = {}
    for sample in family.samples:
        if sample.name == family.name + "_bucket":
            rest = tuple(
                (k, v) for k, v in sample.labels if k != "le"
            )
            le = dict(sample.labels).get("le")
            if le is None:
                raise ValidationError(
                    f"{family.name}: bucket sample missing 'le' label"
                )
            bound = math.inf if le == "+Inf" else float(le)
            series.setdefault(rest, []).append((bound, sample.value))
        elif sample.name == family.name + "_count":
            counts[sample.labels] = sample.value
    for rest, buckets in series.items():
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            raise ValidationError(
                f"{family.name}: bucket bounds not sorted for {rest!r}"
            )
        if not buckets or not math.isinf(buckets[-1][0]):
            raise ValidationError(
                f"{family.name}: histogram series {rest!r} lacks a "
                "+Inf bucket"
            )
        values = [v for _, v in buckets]
        if any(nxt < prev for prev, nxt in zip(values, values[1:])):
            raise ValidationError(
                f"{family.name}: bucket counts not cumulative for {rest!r}"
            )
        expected = counts.get(rest)
        if expected is not None and values[-1] != expected:
            raise ValidationError(
                f"{family.name}: +Inf bucket {values[-1]} != _count "
                f"{expected} for {rest!r}"
            )


def parse_prometheus_text(text: str) -> dict[str, MetricFamily]:
    """Parse 0.0.4 exposition text back into metric families.

    Performs the structural checks a scraper would: valid names and
    types, well-formed label sets, parseable values, and (for
    histograms) sorted cumulative buckets terminated by ``+Inf`` whose
    total agrees with ``_count``.  Raises
    :class:`~repro.errors.ValidationError` on any violation.
    """
    families: dict[str, MetricFamily] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(None, 1)
            if not parts:
                raise ValidationError(f"line {line_no}: bare HELP line")
            name = parts[0]
            help_text = _unescape(parts[1]) if len(parts) > 1 else ""
            family = families.setdefault(
                name, MetricFamily(name=name, kind="untyped")
            )
            family.help = help_text
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                raise ValidationError(
                    f"line {line_no}: malformed TYPE line {line!r}"
                )
            name, kind = parts
            if kind not in _VALID_TYPES:
                raise ValidationError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            family = families.setdefault(
                name, MetricFamily(name=name, kind=kind)
            )
            family.kind = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if match is None:
            raise ValidationError(
                f"line {line_no}: malformed sample line {line!r}"
            )
        sample_name = match.group(1)
        rest = line[match.end() :]
        labels: tuple[tuple[str, str], ...] = ()
        if rest.startswith("{"):
            end = _label_block_end(rest, line_no)
            labels = _parse_labels(rest[1:end], line_no)
            rest = rest[end + 1 :]
        value = _parse_value(rest, line_no)
        family_name = _family_of(sample_name, families)
        family = families.setdefault(
            family_name, MetricFamily(name=family_name, kind="untyped")
        )
        family.samples.append(
            Sample(name=sample_name, value=value, labels=labels)
        )
    for family in families.values():
        if family.kind == "histogram":
            _check_histogram(family)
    return families


def _label_block_end(text: str, line_no: int) -> int:
    """Index of the ``}`` closing the label block opened at ``text[0]``."""
    i = 1
    in_quotes = False
    while i < len(text):
        ch = text[i]
        if ch == "\\" and in_quotes:
            i += 2
            continue
        if ch == '"':
            in_quotes = not in_quotes
        elif ch == "}" and not in_quotes:
            return i
        i += 1
    raise ValidationError(f"line {line_no}: unterminated label block")


# ----------------------------------------------------------------------
# Fixed-bucket histogram
# ----------------------------------------------------------------------
class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics).

    Stores one count per bucket plus sum/count/max: constant memory
    under unbounded traffic, unlike the sample window it replaces.
    Not internally locked — callers (``ServerMetrics``) serialise
    access under their own lock.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "max_value")

    def __init__(
        self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValidationError(
                "histogram bucket bounds must be strictly increasing"
            )
        if any(math.isinf(b) for b in bounds):
            raise ValidationError(
                "the +Inf bucket is implicit; do not pass an inf bound"
            )
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile, or ``None`` when empty.

        Linear interpolation inside the owning bucket, clamped to the
        observed maximum so the estimate never exceeds a real sample
        (and ``p50 <= p95 <= p99 <= max`` always holds).
        """
        if not 0.0 < q <= 1.0:
            raise ValidationError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[i]
            if cumulative + in_bucket >= rank:
                if in_bucket == 0:
                    return min(bound, self.max_value)
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + fraction * (bound - lower)
                return min(estimate, self.max_value)
            cumulative += in_bucket
            lower = bound
        return self.max_value  # rank lands in the +Inf bucket

    def summary(self) -> dict[str, float]:
        """JSON snapshot block.  Empty histograms report only the count
        (a ``0.0`` percentile is indistinguishable from a true
        zero-latency reading, so stats are omitted until data lands)."""
        if self.count == 0:
            return {"count": 0.0}
        stats: dict[str, float] = {
            "count": float(self.count),
            "mean_seconds": self.mean,
            "max_seconds": self.max_value,
        }
        quantile_keys = (
            ("p50_seconds", 0.50),
            ("p95_seconds", 0.95),
            ("p99_seconds", 0.99),
        )
        for key, q in quantile_keys:
            estimate = self.quantile(q)
            if estimate is not None:
                stats[key] = estimate
        return stats

    def bucket_samples(
        self, name: str, labels: tuple[tuple[str, str], ...] = ()
    ) -> list[Sample]:
        """The ``_bucket``/``_sum``/``_count`` series for exposition."""
        samples: list[Sample] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            samples.append(
                Sample(
                    name=name + "_bucket",
                    value=float(cumulative),
                    labels=labels
                    + (("le", format_sample_value(bound)),),
                )
            )
        samples.append(
            Sample(
                name=name + "_bucket",
                value=float(self.count),
                labels=labels + (("le", "+Inf"),),
            )
        )
        samples.append(
            Sample(name=name + "_sum", value=self.total, labels=labels)
        )
        samples.append(
            Sample(
                name=name + "_count", value=float(self.count), labels=labels
            )
        )
        return samples
