"""Automatic aggregate-table integration (the paper's §6 future work).

``align_and_join`` joins two aggregate tables reported over incompatible
unit systems -- the motivating Figure 1 scenario -- without manual
realignment: the left table's value columns are crosswalked to the right
table's unit system with GeoAlign, then the tables are equi-joined on
the unit column.

The caller supplies the available references (as in any GeoAlign use);
units appearing in the tables must match the references' unit labels.
Value columns are realigned independently, each with its own learned
weights, so heterogeneous attributes in one table are each matched to
their best reference blend.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.core.geoalign import GeoAlign
from repro.tabular.table import Table


def table_to_vector(table, unit_column, value_column, unit_labels):
    """Extract ``value_column`` ordered by ``unit_labels``.

    Units missing from the table contribute zero (aggregate tables
    routinely omit empty units); unknown units raise.
    """
    units = table.column(unit_column)
    values = table.column(value_column)
    position = {label: i for i, label in enumerate(unit_labels)}
    vector = np.zeros(len(unit_labels))
    for unit, value in zip(units, values):
        if unit not in position:
            raise ValidationError(
                f"table unit {unit!r} is not a unit of the source system"
            )
        vector[position[unit]] += float(value)
    return vector


def align_table(table, unit_column, references, geoalign_factory=GeoAlign):
    """Realign every numeric column of ``table`` to the target units.

    Returns a new :class:`Table` with the target system's unit labels in
    ``unit_column`` and one realigned column per numeric input column,
    plus the per-column weight reports in the second return value.
    """
    references = list(references)
    if not references:
        raise ValidationError("align_table needs at least one reference")
    source_labels = references[0].dm.source_labels
    target_labels = references[0].dm.target_labels

    value_columns = [
        name
        for name in table.column_names
        if name != unit_column
        and isinstance(table.column(name), np.ndarray)
    ]
    if not value_columns:
        raise ValidationError(
            "table has no numeric value columns to realign"
        )
    out = {unit_column: list(target_labels)}
    weight_reports = {}
    for name in value_columns:
        vector = table_to_vector(table, unit_column, name, source_labels)
        estimator = geoalign_factory()
        out[name] = estimator.fit_predict(references, vector)
        weight_reports[name] = estimator.weight_report()
    return Table(out), weight_reports


def align_and_join(
    left,
    right,
    left_unit_column,
    right_unit_column,
    references,
    how="inner",
    geoalign_factory=GeoAlign,
):
    """Join two aggregate tables reported over unaligned unit systems.

    Parameters
    ----------
    left:
        Table aggregated by the *source* unit system (e.g. steam
        consumption by zip code).
    right:
        Table aggregated by the *target* unit system (e.g. per-capita
        income by county).
    left_unit_column, right_unit_column:
        Unit-label columns of the two tables.
    references:
        References between the two unit systems (source -> target).
    how:
        Join type forwarded to :meth:`Table.join`.

    Returns
    -------
    (Table, dict)
        The joined table keyed by the right table's units, and the
        GeoAlign weight report per realigned column.
    """
    aligned, weights = align_table(
        left, left_unit_column, references, geoalign_factory
    )
    if left_unit_column != right_unit_column:
        aligned = aligned.rename({left_unit_column: right_unit_column})
    return aligned.join(right, on=right_unit_column, how=how), weights
