"""An immutable, dependency-free columnar table.

Just enough relational algebra for the library's examples and the
aggregate-integration pipeline: projection, selection, group-by with sum
/ mean / count, inner and left equi-joins, and sorting.  Columns are
numpy arrays (numeric) or lists (anything else); the table never
mutates -- every operation returns a new :class:`Table`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError, ValidationError

_AGGREGATORS = {
    "sum": lambda values: float(np.sum(values)),
    "mean": lambda values: float(np.mean(values)),
    "count": lambda values: int(len(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
}


class Table:
    """Column-oriented table with named columns of equal length.

    Parameters
    ----------
    columns:
        Mapping of column name to sequence.  Numeric sequences are
        stored as float arrays; everything else as Python lists.
    """

    def __init__(self, columns):
        if not columns:
            raise ValidationError("a table needs at least one column")
        self._columns = {}
        length = None
        for name, values in columns.items():
            stored = _store(values)
            if length is None:
                length = len(stored)
            elif len(stored) != length:
                raise ShapeMismatchError(
                    f"column {name!r} has {len(stored)} rows, expected "
                    f"{length}"
                )
            self._columns[str(name)] = stored
        self._length = length or 0

    # ------------------------------------------------------------------
    @property
    def column_names(self):
        return list(self._columns)

    def __len__(self):
        return self._length

    def __contains__(self, name):
        return name in self._columns

    def column(self, name):
        """The raw column (numpy array or list); raises KeyError if absent."""
        if name not in self._columns:
            raise KeyError(
                f"no column {name!r}; available: {self.column_names}"
            )
        return self._columns[name]

    def rows(self):
        """Iterate rows as dicts (small tables / display only)."""
        for i in range(self._length):
            yield {
                name: _item(col, i) for name, col in self._columns.items()
            }

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def select(self, names):
        """Projection onto ``names`` (order preserved)."""
        return Table({name: self.column(name) for name in names})

    def where(self, predicate):
        """Rows where ``predicate(row_dict)`` is true."""
        keep = [i for i, row in enumerate(self.rows()) if predicate(row)]
        return self._take(keep)

    def with_column(self, name, values):
        """Copy with one column added or replaced."""
        new = dict(self._columns)
        new[name] = values
        return Table(new)

    def rename(self, mapping):
        """Copy with columns renamed per ``{old: new}``."""
        for old in mapping:
            if old not in self._columns:
                raise KeyError(f"no column {old!r} to rename")
        return Table(
            {
                mapping.get(name, name): col
                for name, col in self._columns.items()
            }
        )

    def sort_by(self, name, descending=False):
        """Rows ordered by one column."""
        col = self.column(name)
        if isinstance(col, np.ndarray):
            order = np.argsort(col, kind="stable")
            order = order[::-1] if descending else order
            order = [int(i) for i in order]
        else:
            order = sorted(
                range(self._length),
                key=lambda i: col[i],
                reverse=descending,
            )
        return self._take(order)

    def group_by(self, key, aggregations):
        """Group rows by ``key`` and aggregate other columns.

        ``aggregations`` maps output column name to ``(input_column,
        how)`` where ``how`` is one of sum/mean/count/min/max.

        >>> t = Table({"k": ["a", "a", "b"], "v": [1, 2, 10]})
        >>> g = t.group_by("k", {"total": ("v", "sum")})
        >>> {k: float(v) for k, v in zip(g.column("k"), g.column("total"))}
        {'a': 3.0, 'b': 10.0}
        """
        key_col = self.column(key)
        groups = {}
        for i in range(self._length):
            groups.setdefault(_item(key_col, i), []).append(i)
        out = {key: list(groups)}
        for out_name, (in_name, how) in aggregations.items():
            if how not in _AGGREGATORS:
                raise ValidationError(
                    f"unknown aggregator {how!r}; choose from "
                    f"{sorted(_AGGREGATORS)}"
                )
            col = self.column(in_name)
            agg = _AGGREGATORS[how]
            out[out_name] = [
                agg([_item(col, i) for i in idx])
                for idx in groups.values()
            ]
        return Table(out)

    def join(self, other, on, how="inner", suffix="_right"):
        """Equi-join on column ``on``; ``how`` is "inner" or "left".

        Columns of ``other`` colliding with ours are suffixed.  Left
        joins fill missing numeric values with NaN and others with None.
        """
        if how not in ("inner", "left"):
            raise ValidationError(f"how must be inner or left, got {how!r}")
        right_index = {}
        right_key = other.column(on)
        for j in range(len(other)):
            right_index.setdefault(_item(right_key, j), []).append(j)

        left_rows = []
        right_rows = []
        unmatched = []
        my_key = self.column(on)
        for i in range(self._length):
            matches = right_index.get(_item(my_key, i), ())
            if matches:
                for j in matches:
                    left_rows.append(i)
                    right_rows.append(j)
            elif how == "left":
                left_rows.append(i)
                right_rows.append(None)
                unmatched.append(len(left_rows) - 1)

        out = {
            name: [_item(col, i) for i in left_rows]
            for name, col in self._columns.items()
        }
        for name, col in other._columns.items():
            if name == on:
                continue
            out_name = name if name not in out else name + suffix
            fill = float("nan") if isinstance(col, np.ndarray) else None
            out[out_name] = [
                fill if j is None else _item(col, j) for j in right_rows
            ]
        return Table(out)

    # ------------------------------------------------------------------
    def _take(self, indices):
        return Table(
            {
                name: [_item(col, i) for i in indices]
                for name, col in self._columns.items()
            }
        )

    def to_text(self, max_rows=20):
        """Fixed-width preview for terminals and docs."""
        names = self.column_names
        shown = list(self.rows())[:max_rows]
        widths = {
            n: max(len(n), *(len(_fmt(r[n])) for r in shown), 4)
            if shown
            else len(n)
            for n in names
        }
        lines = ["  ".join(n.ljust(widths[n]) for n in names)]
        for row in shown:
            lines.append(
                "  ".join(_fmt(row[n]).ljust(widths[n]) for n in names)
            )
        if self._length > max_rows:
            lines.append(f"... ({self._length} rows total)")
        return "\n".join(lines)

    def __repr__(self):
        return f"Table(rows={self._length}, columns={self.column_names})"


def _store(values):
    if isinstance(values, np.ndarray):
        return values.astype(float) if values.dtype != object else list(values)
    values = list(values)
    if values and all(
        isinstance(v, (int, float, np.integer, np.floating))
        and not isinstance(v, bool)
        for v in values
    ):
        return np.asarray(values, dtype=float)
    return values


def _item(col, i):
    value = col[i]
    if isinstance(value, np.floating):
        return float(value)
    return value


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
