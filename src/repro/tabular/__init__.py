"""Minimal columnar tables and aggregate-aware joins.

The paper's motivating example (Fig. 1) joins two *aggregate tables*
reported over incompatible geographic types.  This subpackage provides
the thin database layer that makes the example runnable end to end:

* :class:`~repro.tabular.table.Table` -- an immutable column-oriented
  table with selection, filtering, group-by aggregation and equi-joins;
* CSV io without third-party dependencies;
* :mod:`repro.tabular.integrate` -- the paper's §6 future-work feature:
  automatically realigning and joining aggregate tables whose unit
  columns refer to different unit systems, using GeoAlign as the
  realignment engine.
"""

from repro.tabular.table import Table
from repro.tabular.io_ import read_csv, write_csv
from repro.tabular.integrate import align_and_join

__all__ = ["Table", "read_csv", "write_csv", "align_and_join"]
