"""CSV reading and writing for :class:`~repro.tabular.table.Table`.

Uses only the standard library.  On read, columns whose every non-empty
value parses as a float become numeric; everything else stays text.
"""

from __future__ import annotations

import csv

from repro.errors import ValidationError
from repro.tabular.table import Table


def read_csv(path_or_file):
    """Load a CSV with a header row into a :class:`Table`."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, newline="") as handle:
        return _read(handle)


def _read(handle):
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValidationError("CSV file is empty") from None
    if len(set(header)) != len(header):
        raise ValidationError("CSV header has duplicate column names")
    raw = {name: [] for name in header}
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(header):
            raise ValidationError(
                f"line {lineno}: expected {len(header)} fields, got "
                f"{len(row)}"
            )
        for name, value in zip(header, row):
            raw[name].append(value)
    return Table(
        {name: _coerce(values) for name, values in raw.items()}
    )


def _coerce(values):
    """Numeric column if every non-empty entry parses as float."""
    parsed = []
    for value in values:
        text = value.strip()
        if text == "":
            return values
        try:
            parsed.append(float(text))
        except ValueError:
            return values
    return parsed


def write_csv(table, path_or_file):
    """Write a :class:`Table` to CSV with a header row."""
    if hasattr(path_or_file, "write"):
        _write(table, path_or_file)
    else:
        with open(path_or_file, "w", newline="") as handle:
            _write(table, handle)


def _write(table, handle):
    writer = csv.writer(handle)
    names = table.column_names
    writer.writerow(names)
    for row in table.rows():
        writer.writerow([row[name] for name in names])
