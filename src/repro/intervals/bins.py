"""Interval unit systems over a 1-D universe.

An :class:`IntervalUnitSystem` is an ordered sequence of contiguous,
non-overlapping half-open intervals ``[edge_i, edge_{i+1})`` -- exactly a
histogram binning.  Overlap between two interval systems is computed with
a linear two-pointer sweep, so building the 1-D intersection structure is
O(|U^s| + |U^t|).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError, ShapeMismatchError
from repro.partitions.system import UnitSystem


class IntervalUnitSystem(UnitSystem):
    """Contiguous interval bins defined by ascending edges.

    Parameters
    ----------
    edges:
        Ascending array of ``n + 1`` bin edges defining ``n`` units.
    labels:
        Optional unit labels; defaults to ``"[lo, hi)"`` strings.
    """

    def __init__(self, edges, labels=None):
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or len(edges) < 2:
            raise PartitionError(
                "interval system needs at least two ascending edges"
            )
        if not np.all(np.isfinite(edges)):
            raise PartitionError("interval edges must be finite")
        if not np.all(np.diff(edges) > 0):
            raise PartitionError("interval edges must be strictly ascending")
        if labels is None:
            labels = [
                f"[{lo:g}, {hi:g})" for lo, hi in zip(edges[:-1], edges[1:])
            ]
        super().__init__(labels)
        if len(self.labels) != len(edges) - 1:
            raise ShapeMismatchError(
                f"{len(edges) - 1} bins but {len(self.labels)} labels"
            )
        self.edges = edges

    @classmethod
    def uniform(cls, start, stop, n_bins, labels=None):
        """``n_bins`` equal-width bins spanning ``[start, stop)``."""
        return cls(np.linspace(start, stop, n_bins + 1), labels=labels)

    def _content_fingerprint(self):
        from repro.cache import combine_fingerprints, fingerprint_array

        return combine_fingerprints(
            "interval-edges", fingerprint_array(self.edges)
        )

    @property
    def lows(self):
        return self.edges[:-1]

    @property
    def highs(self):
        return self.edges[1:]

    def measures(self):
        """Bin widths."""
        return np.diff(self.edges)

    def span(self):
        """(universe_start, universe_end) covered by the system."""
        return float(self.edges[0]), float(self.edges[-1])

    def overlap_pairs(self, other):
        """Two-pointer sweep over both edge sequences.

        The systems may cover different spans; only the common span
        produces intersection units.
        """
        if not isinstance(other, IntervalUnitSystem):
            raise ShapeMismatchError(
                "can only overlay IntervalUnitSystem with "
                f"IntervalUnitSystem, got {type(other).__name__}"
            )
        src_idx = []
        tgt_idx = []
        measure = []
        i = j = 0
        while i < len(self) and j < len(other):
            lo = max(self.edges[i], other.edges[j])
            hi = min(self.edges[i + 1], other.edges[j + 1])
            if hi > lo:
                src_idx.append(i)
                tgt_idx.append(j)
                measure.append(hi - lo)
            # Advance whichever interval ends first.
            if self.edges[i + 1] <= other.edges[j + 1]:
                i += 1
            else:
                j += 1
        return (
            np.asarray(src_idx, dtype=np.int64),
            np.asarray(tgt_idx, dtype=np.int64),
            np.asarray(measure, dtype=float),
        )

    def locate_points(self, points):
        """Bin index of each scalar point, -1 outside the span."""
        pts = np.asarray(points, dtype=float).ravel()
        idx = np.searchsorted(self.edges, pts, side="right") - 1
        idx[(pts < self.edges[0]) | (pts >= self.edges[-1])] = -1
        return idx.astype(np.int64)

    def aggregate_points(self, points, weights=None):
        """Histogram: total point weight per bin (outside points dropped)."""
        idx = self.locate_points(points)
        keep = idx >= 0
        if weights is None:
            weights = np.ones(len(idx))
        else:
            weights = np.asarray(weights, dtype=float)
        out = np.zeros(len(self))
        np.add.at(out, idx[keep], weights[keep])
        return out

    def __repr__(self):
        lo, hi = self.span()
        return f"IntervalUnitSystem(n={len(self)}, span=[{lo:g}, {hi:g}))"
