"""1-D interval unit systems (paper §2.2, Figure 3).

Histogram realignment -- e.g. population counts over narrow age bins
re-expressed over wide age bins -- is the one-dimensional instance of the
aggregate interpolation problem.  Units are intervals on the real line
and overlap measure is overlap length.
"""

from repro.intervals.bins import IntervalUnitSystem

__all__ = ["IntervalUnitSystem"]
