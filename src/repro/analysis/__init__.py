"""``repro-lint``: the project's numerical-correctness static analysis.

An AST-based linter with project-specific rules that guard the
invariants the paper relies on -- deterministic seeding, tolerance-based
float comparison (Eq. 16 volume preservation is a numerical check),
error-type discipline in :mod:`repro.core`, and report/timing hygiene.

Use from Python::

    from repro.analysis import lint_paths
    violations = lint_paths(["src/repro"])
    assert not violations

or from the shell::

    geoalign-repro lint src

See ``docs/static-analysis.md`` for the rule catalogue and suppression
syntax (``# repro-lint: allow[rule-id] <justification>``).
"""

from repro.analysis.engine import (
    SYNTAX_ERROR_RULE,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for_path,
)
from repro.analysis.registry import (
    FileContext,
    Rule,
    all_rules,
    register_rule,
    resolve_rules,
)
from repro.analysis.reporters import render, render_json, render_text
from repro.analysis.suppressions import Suppressions, collect_suppressions
from repro.analysis.violations import Violation

__all__ = [
    "SYNTAX_ERROR_RULE",
    "FileContext",
    "Rule",
    "Suppressions",
    "Violation",
    "all_rules",
    "collect_suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for_path",
    "register_rule",
    "render",
    "render_json",
    "render_text",
    "resolve_rules",
]
