"""``repro-lint``: the project's numerical-correctness static analysis.

An AST-based linter with project-specific rules that guard the
invariants the paper relies on -- deterministic seeding, tolerance-based
float comparison (Eq. 16 volume preservation is a numerical check),
error-type discipline in :mod:`repro.core`, and report/timing hygiene.

Two passes are available:

* the classic per-file pass (:func:`lint_paths`), cheap enough for
  editor hooks, and
* the whole-program ``--deep`` pass (:func:`deep_lint_paths`), which
  builds a project symbol table, call graph and dataflow facts to run
  the cross-module rule families (concurrency safety, alias mutation,
  instrumentation coverage, cross-call float comparison) plus
  stale-suppression detection.

Use from Python::

    from repro.analysis import lint_paths, deep_lint_paths
    violations = lint_paths(["src/repro"])
    report = deep_lint_paths(["src/repro"])    # .violations, .stats

or from the shell::

    geoalign-repro lint src
    geoalign-repro lint --deep --format sarif src

See ``docs/static-analysis.md`` for the rule catalogue, suppression
syntax (``# repro-lint: allow[rule-id] <justification>``) and the
baseline-ratchet workflow.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    GateResult,
    compare_to_baseline,
    count_violations,
    format_gate_report,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    STALE_SUPPRESSION_RULE,
    SYNTAX_ERROR_RULE,
    DeepReport,
    deep_lint_paths,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for_path,
)
from repro.analysis.registry import (
    FileContext,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    register_project_rule,
    register_rule,
    resolve_project_rules,
    resolve_rules,
)
from repro.analysis.reporters import (
    render,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.suppressions import Suppressions, collect_suppressions
from repro.analysis.violations import SEVERITIES, Violation

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "DeepReport",
    "FileContext",
    "GateResult",
    "ProjectRule",
    "Rule",
    "SEVERITIES",
    "STALE_SUPPRESSION_RULE",
    "SYNTAX_ERROR_RULE",
    "Suppressions",
    "Violation",
    "all_project_rules",
    "all_rules",
    "collect_suppressions",
    "compare_to_baseline",
    "count_violations",
    "deep_lint_paths",
    "format_gate_report",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "register_project_rule",
    "register_rule",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_project_rules",
    "resolve_rules",
    "save_baseline",
]
