"""Suppression comments for ``repro-lint``.

Two forms are recognised:

* ``# repro-lint: allow[rule-id]`` (optionally several ids separated by
  commas) on the **same line** as the violation silences those rules for
  that line.  Anything after the closing bracket is free-form
  justification text, which the satellite convention requires for
  intentional exact-zero sentinels and similar.
* ``# repro-lint: skip-file`` anywhere in the file skips the whole file.

Suppressions are extracted with :mod:`tokenize` rather than regexes over
raw lines so string literals containing the magic text do not count.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_ALLOW = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_,\s-]+)\]")
_SKIP_FILE = re.compile(r"#\s*repro-lint:\s*skip-file\b")


@dataclass
class Suppressions:
    """Per-line rule suppressions plus the whole-file skip flag."""

    skip_file: bool = False
    #: line number -> set of rule ids allowed on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` is allowed on ``line`` (or file skipped)."""
        if self.skip_file:
            return True
        return rule_id in self.by_line.get(line, set())


def collect_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for suppression comments.

    Unparseable files produce an empty suppression table; the engine
    reports the syntax error separately.
    """
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            if _SKIP_FILE.search(tok.string):
                result.skip_file = True
            match = _ALLOW.search(tok.string)
            if match:
                ids = {
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                line = tok.start[0]
                result.by_line.setdefault(line, set()).update(ids)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return result
