"""Violation baseline for ratcheting the deep pass.

A baseline is a committed JSON file mapping ``"module:rule-id"`` to the
number of known violations.  The deep CI gate compares the current run
against it:

* a (module, rule) count **above** the baseline is a *new* violation and
  fails the gate;
* a count **below** the baseline is progress -- the gate passes and asks
  (via :func:`format_gate_report`) for the baseline to be re-recorded so
  the improvement ratchets.

Keys are dotted module names (via
:func:`repro.analysis.engine.module_name_for_path`), not file paths:
tests invoke the analyzer with absolute paths and CI with ``src``, and
both must agree on what is already known.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.analysis.engine import module_name_for_path
from repro.analysis.violations import Violation

#: Default committed location, relative to the repository root.
DEFAULT_BASELINE_PATH = "lint-baseline.json"


def _key(violation: Violation) -> str:
    return f"{module_name_for_path(violation.path)}:{violation.rule_id}"


def count_violations(violations: Sequence[Violation]) -> dict[str, int]:
    """``"module:rule-id" -> count`` for one run's violations."""
    return dict(Counter(_key(violation) for violation in violations))


def load_baseline(path: str) -> dict[str, int]:
    """Read a committed baseline file; missing file means empty baseline."""
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"baseline file {path!r} is not valid JSON: {exc}"
            ) from exc
    counts = payload.get("counts")
    if not isinstance(counts, dict) or not all(
        isinstance(key, str) and isinstance(value, int)
        for key, value in counts.items()
    ):
        raise ValidationError(
            f"baseline file {path!r} must contain a 'counts' object "
            "mapping 'module:rule-id' strings to integers"
        )
    return dict(counts)


def save_baseline(path: str, violations: Sequence[Violation]) -> None:
    """Write the current violation counts as the new baseline."""
    payload = {
        "comment": (
            "repro-lint --deep violation baseline; counts are keyed by "
            "'module:rule-id' and may only go down.  Re-record with "
            "'geoalign-repro lint --deep --write-baseline' after "
            "deliberate changes."
        ),
        "counts": dict(sorted(count_violations(violations).items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@dataclass
class GateResult:
    """Outcome of comparing one run against the committed baseline."""

    #: "module:rule-id" keys whose count exceeds the baseline, mapped to
    #: (current, allowed).
    new: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Keys whose count dropped below the baseline (ratchet candidates).
    improved: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.new


def compare_to_baseline(
    violations: Sequence[Violation], baseline: dict[str, int]
) -> GateResult:
    """Diff current counts against the baseline."""
    current = count_violations(violations)
    result = GateResult()
    for key in sorted(set(current) | set(baseline)):
        now = current.get(key, 0)
        allowed = baseline.get(key, 0)
        if now > allowed:
            result.new[key] = (now, allowed)
        elif now < allowed:
            result.improved[key] = (now, allowed)
    return result


def format_gate_report(result: GateResult) -> str:
    """Human-readable gate outcome for the CLI/CI log."""
    lines: list[str] = []
    for key, (now, allowed) in result.new.items():
        lines.append(
            f"repro-lint: NEW violations for {key}: {now} found, "
            f"{allowed} allowed by baseline"
        )
    for key, (now, allowed) in result.improved.items():
        lines.append(
            f"repro-lint: improved {key}: {now} found, baseline allows "
            f"{allowed}; re-record with --write-baseline to ratchet"
        )
    if result.passed:
        lines.append("repro-lint: baseline gate passed")
    else:
        lines.append("repro-lint: baseline gate FAILED")
    return "\n".join(lines)
