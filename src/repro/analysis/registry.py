"""Rule base class and registry for ``repro-lint``.

Every rule is a subclass of :class:`Rule` registered under a unique
kebab-case identifier via :func:`register_rule`.  The engine instantiates
one rule object per file and calls :meth:`Rule.check` with a
:class:`FileContext`; rules yield :class:`~repro.analysis.violations.Violation`
records.

Scoping
-------
Rules can restrict themselves two ways:

* ``scope_prefixes`` -- the rule only runs on modules whose dotted name
  starts with one of these prefixes (``None`` means every module).
* ``allowlist`` -- dotted module names exempt from the rule (e.g. the
  RNG-discipline rule exempts :mod:`repro.utils.rng`, the one place
  allowed to construct generators).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TypeVar

from repro.errors import ValidationError
from repro.analysis.violations import Violation


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one parsed source file."""

    path: str
    module: str
    tree: ast.Module
    source: str = ""

    def walk(self) -> Iterator[ast.AST]:
        """All AST nodes of the file in document order."""
        return ast.walk(self.tree)


class Rule:
    """Base class for all ``repro-lint`` rules.

    Subclasses set the class attributes below and implement
    :meth:`check`.  ``rationale`` ties the rule to the paper invariant
    it protects; it surfaces in ``--list-rules`` and the docs.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    #: Severity attached to every violation: "error", "warning" or "note".
    severity: str = "error"
    #: Dotted-module prefixes the rule is limited to (None = everywhere).
    scope_prefixes: tuple[str, ...] | None = None
    #: Dotted modules exempt from the rule.
    allowlist: frozenset[str] = frozenset()

    def applies_to(self, module: str) -> bool:
        """Whether this rule should run on ``module`` at all."""
        if module in self.allowlist:
            return False
        if self.scope_prefixes is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope_prefixes
        )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield violations found in ``ctx``; subclasses must override."""
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=ctx.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


class ProjectRule:
    """Base class for whole-program (``--deep``) rules.

    Unlike :class:`Rule`, a project rule sees every parsed module at
    once through a :class:`~repro.analysis.project.ProjectContext`
    (symbol table, call graph, dataflow facts) and may relate code in
    one module to code in another -- a thread fan-out in
    ``repro.core.batch`` reaching a registry write in
    ``repro.obs.trace``, say.  Violations are still anchored at one
    file/line, so per-line suppressions work unchanged.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    severity: str = "error"

    def check_project(self, project: "object") -> Iterable[Violation]:
        """Yield violations over the whole project; subclasses override.

        ``project`` is a :class:`repro.analysis.project.ProjectContext`
        (typed loosely here to keep the registry import-light).
        """
        raise NotImplementedError


#: The global rule registry: rule id -> rule class.
_REGISTRY: dict[str, type[Rule]] = {}

#: The project-rule registry (``--deep`` only): rule id -> rule class.
_PROJECT_REGISTRY: dict[str, type[ProjectRule]] = {}

R = TypeVar("R", bound=type[Rule])
P = TypeVar("P", bound=type[ProjectRule])


def register_rule(cls: R) -> R:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if not cls.id:
        raise ValidationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY or cls.id in _PROJECT_REGISTRY:
        raise ValidationError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def register_project_rule(cls: P) -> P:
    """Class decorator adding a project rule (ids shared with file rules)."""
    if not cls.id:
        raise ValidationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY or cls.id in _PROJECT_REGISTRY:
        raise ValidationError(f"duplicate rule id {cls.id!r}")
    _PROJECT_REGISTRY[cls.id] = cls
    return cls


def _load_rule_modules() -> None:
    # Importing checks here (not at module top) avoids a cycle:
    # checks.py / deep_checks.py import register_* from this module.
    from repro.analysis import checks, deep_checks  # noqa: F401


def all_rules() -> dict[str, type[Rule]]:
    """Copy of the per-file registry (id -> class), import-safe."""
    _load_rule_modules()
    return dict(_REGISTRY)


def all_project_rules() -> dict[str, type[ProjectRule]]:
    """Copy of the project-rule registry (id -> class), import-safe."""
    _load_rule_modules()
    return dict(_PROJECT_REGISTRY)


def resolve_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the selected per-file rules (all when ``select=None``)."""
    registry = all_rules()
    if select is None:
        ids = sorted(registry)
    else:
        ids = [rule_id for rule_id in select if rule_id in registry]
        unknown = [
            rule_id
            for rule_id in select
            if rule_id not in registry
            and rule_id not in all_project_rules()
        ]
        if unknown:
            known = ", ".join(
                sorted({**registry, **all_project_rules()})
            )
            raise ValidationError(
                f"unknown rule id(s) {unknown}; known rules: {known}"
            )
    return [registry[rule_id]() for rule_id in ids]


def resolve_project_rules(
    select: Iterable[str] | None = None,
) -> list[ProjectRule]:
    """Instantiate the selected project rules (all when ``select=None``).

    Unknown ids are validated by :func:`resolve_rules` (the engine calls
    both with the same selection), so this resolver just filters.
    """
    registry = all_project_rules()
    if select is None:
        ids = sorted(registry)
    else:
        ids = [rule_id for rule_id in select if rule_id in registry]
    return [registry[rule_id]() for rule_id in ids]
