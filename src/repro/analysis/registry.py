"""Rule base class and registry for ``repro-lint``.

Every rule is a subclass of :class:`Rule` registered under a unique
kebab-case identifier via :func:`register_rule`.  The engine instantiates
one rule object per file and calls :meth:`Rule.check` with a
:class:`FileContext`; rules yield :class:`~repro.analysis.violations.Violation`
records.

Scoping
-------
Rules can restrict themselves two ways:

* ``scope_prefixes`` -- the rule only runs on modules whose dotted name
  starts with one of these prefixes (``None`` means every module).
* ``allowlist`` -- dotted module names exempt from the rule (e.g. the
  RNG-discipline rule exempts :mod:`repro.utils.rng`, the one place
  allowed to construct generators).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TypeVar

from repro.errors import ValidationError
from repro.analysis.violations import Violation


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one parsed source file."""

    path: str
    module: str
    tree: ast.Module
    source: str = ""

    def walk(self) -> Iterator[ast.AST]:
        """All AST nodes of the file in document order."""
        return ast.walk(self.tree)


class Rule:
    """Base class for all ``repro-lint`` rules.

    Subclasses set the class attributes below and implement
    :meth:`check`.  ``rationale`` ties the rule to the paper invariant
    it protects; it surfaces in ``--list-rules`` and the docs.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    #: Dotted-module prefixes the rule is limited to (None = everywhere).
    scope_prefixes: tuple[str, ...] | None = None
    #: Dotted modules exempt from the rule.
    allowlist: frozenset[str] = frozenset()

    def applies_to(self, module: str) -> bool:
        """Whether this rule should run on ``module`` at all."""
        if module in self.allowlist:
            return False
        if self.scope_prefixes is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope_prefixes
        )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield violations found in ``ctx``; subclasses must override."""
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=ctx.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule_id=self.id,
            message=message,
        )


#: The global rule registry: rule id -> rule class.
_REGISTRY: dict[str, type[Rule]] = {}

R = TypeVar("R", bound=type[Rule])


def register_rule(cls: R) -> R:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if not cls.id:
        raise ValidationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValidationError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Copy of the registry (id -> class), import-safe for callers."""
    # Importing checks here (not at module top) avoids a cycle:
    # checks.py imports register_rule from this module.
    from repro.analysis import checks  # noqa: F401

    return dict(_REGISTRY)


def resolve_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all of them when ``select=None``)."""
    registry = all_rules()
    if select is None:
        ids = sorted(registry)
    else:
        ids = list(select)
        unknown = [rule_id for rule_id in ids if rule_id not in registry]
        if unknown:
            known = ", ".join(sorted(registry))
            raise ValidationError(
                f"unknown rule id(s) {unknown}; known rules: {known}"
            )
    return [registry[rule_id]() for rule_id in ids]
