"""The violation record emitted by every ``repro-lint`` rule.

A :class:`Violation` is deliberately a plain, ordered, hashable value
object: the engine sorts them for stable reports, the reporters render
them, and tests compare them structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels, in decreasing order of urgency.  ``error`` gates
#: merges, ``warning`` is ratcheted through the baseline, ``note`` is
#: informational (SARIF uses the same three levels).
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at one source location.

    Attributes
    ----------
    path:
        File the violation was found in, as given to the engine.
    line, col:
        1-based line and 0-based column of the offending node.
    rule_id:
        Identifier of the rule that fired (e.g. ``float-eq``).
    message:
        Human-readable description of what is wrong and how to fix it.
    severity:
        ``"error"``, ``"warning"`` or ``"note"``; compares after the
        location/rule fields so report ordering is unchanged from v1.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = field(default="error")

    def format(self) -> str:
        """``path:line:col: rule-id message`` -- the text-report line."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (used by the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "severity": self.severity,
        }
