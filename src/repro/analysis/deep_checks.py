"""Whole-program (``--deep``) rule families for ``repro-lint``.

These rules combine the project symbol table
(:mod:`repro.analysis.project`), the call graph
(:mod:`repro.analysis.callgraph`) and the per-function dataflow facts
(:mod:`repro.analysis.dataflow`) to catch defects no single file can
show:

* **Concurrency safety** (``thread-shared-state``, ``thread-shared-rng``,
  ``thread-span-misuse``) -- unguarded writes to shared mutable state,
  NumPy ``Generator`` objects and obs ContextVars crossing worker
  boundaries via ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` /
  ``threading.Thread`` fan-out.  Thread and process sites fire the same
  rule ids with kind-specific messages: threads race on shared memory,
  processes silently lose the write (each worker mutates its own pickled
  copy) or duplicate the generator stream (pickled per task).
* **Aliasing / purity** (``alias-mutation``) -- a public core/partitions
  function forwarding a parameter into a callee that mutates it in
  place: invisible to the per-file ``ndarray-mutation`` rule because the
  write lives in another function (often another module).
* **Instrumentation coverage** (``missing-instrumentation``) -- hot-path
  public functions reachable from the CLI/experiment entry points that
  never open a span nor emit a ``health.*`` gauge; also publishes the
  coverage percentage into the run stats.
* **Cross-call float comparison** (``cross-float-eq``) -- ``==``/``!=``
  against the result of a project function that statically returns a
  float, escalating the per-file literal check across call edges.

All rules follow the conservative stance of the project model: they
fire only on positively identified facts, so the pass stays quiet
enough to gate CI through the committed baseline.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.callgraph import CallGraph, iter_own_nodes
from repro.analysis.dataflow import DataflowIndex
from repro.analysis.project import FunctionInfo, ProjectContext
from repro.analysis.registry import ProjectRule, register_project_rule
from repro.analysis.violations import Violation

#: Modules that implement the obs machinery itself; exempt from the
#: thread rules (the trace module must touch its own registries and
#: ContextVars to provide the safe API everyone else uses).
_OBS_INTERNAL = frozenset({"repro.obs.trace", "repro.obs.timing"})

#: Module prefixes considered the numerical hot path for the
#: instrumentation-coverage rule.
_HOT_PREFIXES = ("repro.core", "repro.partitions")

#: Modules whose public functions are treated as workload entry points.
_ENTRY_MODULES = ("repro.cli", "repro.experiments")


def _analysis_state(project: ProjectContext) -> tuple[CallGraph, DataflowIndex]:
    """Build (once per run) and cache the graph + dataflow on the project."""
    cached = project.stats.get("_analysis_state")
    if isinstance(cached, tuple):
        return cached  # type: ignore[return-value]
    graph = CallGraph(project)
    dataflow = DataflowIndex(project, graph)
    project.stats["_analysis_state"] = (graph, dataflow)
    return graph, dataflow


def _violation(
    rule: ProjectRule, fn: FunctionInfo, line: int, col: int, message: str
) -> Violation:
    return Violation(
        path=fn.path,
        line=line,
        col=col,
        rule_id=rule.id,
        message=message,
        severity=rule.severity,
    )


def _in_modules(module_name: str, prefixes: Iterable[str]) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in prefixes
    )


def _is_public_api(fn: FunctionInfo) -> bool:
    """Public top-level function, or public method of a public class."""
    return (
        fn.is_public
        and fn.parent_qualname is None
        and not fn.name.startswith("__")
        and (fn.class_name is None or not fn.class_name.startswith("_"))
    )


# ----------------------------------------------------------------------
# thread-shared-state
# ----------------------------------------------------------------------
@register_project_rule
class ThreadSharedStateRule(ProjectRule):
    """No unguarded writes to shared mutable state on worker threads."""

    id = "thread-shared-state"
    summary = (
        "functions reachable from thread or process fan-out must not "
        "write module or closure state (threads: without a lock; "
        "processes: at all -- the write is lost at the pickle boundary)"
    )
    rationale = (
        "BatchAligner fans per-stack work across a ThreadPoolExecutor "
        "and ShardedAligner across a ProcessPoolExecutor (§6 scale-out); "
        "a racy registry write corrupts whichever threaded run loses the "
        "interleaving, and the same write in a process worker mutates a "
        "pickled copy the parent never sees -- neither failure "
        "reproduces in a single-worker test."
    )
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        graph, dataflow = _analysis_state(project)
        on_thread = graph.thread_reachable()
        # Thread-reachability wins when a function is reachable both
        # ways: the race is the immediate bug, and one message per
        # write keeps the baseline counts stable.
        on_process = graph.process_reachable() - on_thread
        for qualname in sorted(on_thread):
            fn = project.functions[qualname]
            facts = dataflow.facts[qualname]
            for write in facts.shared_writes:
                if write.guarded:
                    continue
                yield _violation(
                    self,
                    fn,
                    write.line,
                    write.col,
                    f"{qualname!r} runs on worker threads and writes "
                    f"shared {write.kind} state {write.target!r} (rooted "
                    f"at {write.root!r}) without holding a lock; guard "
                    "the write with a lock or buffer per-thread and "
                    "merge at join",
                )
        for qualname in sorted(on_process):
            fn = project.functions[qualname]
            facts = dataflow.facts[qualname]
            for write in facts.shared_writes:
                # A lock does not help across processes: the guarded
                # write still lands in the worker's own copy.  Fire on
                # guarded writes too.
                yield _violation(
                    self,
                    fn,
                    write.line,
                    write.col,
                    f"{qualname!r} runs in pool worker processes and "
                    f"writes shared {write.kind} state {write.target!r} "
                    f"(rooted at {write.root!r}); each worker mutates "
                    "its own pickled copy, so the write is silently "
                    "lost at the process boundary -- return results "
                    "from the worker and merge in the parent instead",
                )


# ----------------------------------------------------------------------
# thread-shared-rng
# ----------------------------------------------------------------------
@register_project_rule
class ThreadSharedRngRule(ProjectRule):
    """NumPy Generators must not be shared across thread boundaries."""

    id = "thread-shared-rng"
    summary = (
        "no numpy Generator shared between the submitting function and "
        "its thread or process pool workers"
    )
    rationale = (
        "np.random.Generator is not thread-safe; concurrent draws can "
        "repeat or skip states, silently breaking the seed-reproducibility "
        "contract every experiment depends on.  Across a process pool the "
        "generator is pickled per task instead, so every worker replays "
        "the same stream.  Spawn per-task child generators "
        "(repro.utils.rng.spawn_rngs) either way."
    )
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        graph, dataflow = _analysis_state(project)
        for fanout in graph.fanouts:
            if fanout.callee is None:
                continue
            callee_facts = dataflow.facts.get(fanout.callee)
            caller_facts = dataflow.facts.get(fanout.caller)
            if callee_facts is None or caller_facts is None:
                continue
            shared = callee_facts.free_variables & caller_facts.rng_bindings
            if not shared:
                continue
            caller_fn = project.functions[fanout.caller]
            names = ", ".join(sorted(shared))
            if fanout.kind == "process":
                failure = (
                    "the generator is pickled into every worker "
                    "process, so each task replays the same stream"
                )
            else:
                failure = "generators are not thread-safe"
            yield _violation(
                self,
                caller_fn,
                fanout.line,
                fanout.col,
                f"worker {fanout.callee!r} submitted via "
                f"{fanout.api} closes over RNG(s) {names} created in "
                f"{fanout.caller!r}; {failure} -- "
                "spawn per-task children with "
                "repro.utils.rng.spawn_rngs instead",
            )


# ----------------------------------------------------------------------
# thread-span-misuse
# ----------------------------------------------------------------------
@register_project_rule
class ThreadSpanMisuseRule(ProjectRule):
    """Obs ContextVars must only be mutated by the obs machinery itself."""

    id = "thread-span-misuse"
    summary = (
        "no direct ContextVar .set()/.reset() from thread-reachable code "
        "outside repro.obs"
    )
    rationale = (
        "Trace sessions live in ContextVars that do not propagate into "
        "pool workers; setting them directly from worker-reachable code "
        "leaks state into the wrong thread's context.  Use "
        "repro.obs.trace.current_trace_context()/activate() to carry a "
        "session across the boundary."
    )
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        graph, dataflow = _analysis_state(project)
        on_thread = graph.thread_reachable()
        for qualname in sorted(on_thread):
            fn = project.functions[qualname]
            if fn.module_name in _OBS_INTERNAL:
                continue
            facts = dataflow.facts[qualname]
            for line, col, var in facts.contextvar_mutations:
                yield _violation(
                    self,
                    fn,
                    line,
                    col,
                    f"{qualname!r} runs on worker threads and mutates "
                    f"ContextVar {var!r} directly; context does not "
                    "propagate across threads -- use the obs "
                    "trace-context helpers instead",
                )


# ----------------------------------------------------------------------
# process-span-capture
# ----------------------------------------------------------------------
@register_project_rule
class ProcessSpanCaptureRule(ProjectRule):
    """Obs records in process-pool workers must ride a SpanCapture."""

    id = "process-span-capture"
    summary = (
        "spans/events/counters/gauges recorded in process-pool workers "
        "must be wrapped in a SpanCapture (repro.obs.telemetry."
        "worker_capture)"
    )
    rationale = (
        "A pool worker inherits pickled *copies* of the driver's trace "
        "sessions: every span, counter and gauge it records lands in "
        "the copy and vanishes when the worker returns.  The telemetry "
        "pipeline exists precisely for this -- the worker records into "
        "a picklable SpanCapture shipped back with its partials, and "
        "the driver stitches it under the parent span.  An unwrapped "
        "recording site is observability silently thrown away, which "
        "no single-process test can notice."
    )
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        graph, dataflow = _analysis_state(project)
        reported: set[tuple[str, int, int]] = set()
        for entry in sorted(graph.process_entries()):
            entry_facts = dataflow.facts.get(entry)
            if entry_facts is not None and entry_facts.uses_worker_capture:
                continue
            for qualname in sorted(graph.reachable_from([entry])):
                fn = project.functions[qualname]
                # The obs machinery itself (span/capture internals) is
                # exempt; it is what the wrapped pattern calls into.
                if _in_modules(fn.module_name, ("repro.obs",)):
                    continue
                facts = dataflow.facts[qualname]
                for line, col, api in facts.obs_records:
                    if (qualname, line, col) in reported:
                        continue
                    reported.add((qualname, line, col))
                    where = (
                        "is a process-pool worker"
                        if qualname == entry
                        else f"runs in process-pool worker {entry!r}"
                    )
                    yield _violation(
                        self,
                        fn,
                        line,
                        col,
                        f"{qualname!r} {where} and records obs "
                        f"{api!r} outside a SpanCapture; the record "
                        "lands in the worker's pickled session copy "
                        "and is silently lost -- wrap the worker body "
                        "in repro.obs.telemetry.worker_capture and "
                        "stitch the returned capture in the driver",
                    )


# ----------------------------------------------------------------------
# alias-mutation
# ----------------------------------------------------------------------
@register_project_rule
class AliasMutationRule(ProjectRule):
    """Public core functions must not mutate parameters *via callees*."""

    id = "alias-mutation"
    summary = (
        "public core/partitions functions must not forward parameters "
        "into callees that mutate them in place"
    )
    rationale = (
        "The per-file ndarray-mutation rule sees direct writes only; "
        "aliasing through a call edge (public fit() handing its "
        "caller's array to a helper that scales it in place) corrupts "
        "reference DMs across cross-validation folds (§4.2) just the "
        "same, one module away from where anyone is looking."
    )
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        _graph, dataflow = _analysis_state(project)
        transitive = dataflow.transitive_param_mutations()
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if not _is_public_api(fn):
                continue
            if not _in_modules(fn.module_name, _HOT_PREFIXES):
                continue
            facts = dataflow.facts[qualname]
            for param in sorted(transitive.get(qualname, ())):
                if param in facts.mutated_params:
                    continue  # direct writes are the per-file rule's job
                witness = dataflow.mutation_witness(qualname, param)
                if witness is None:
                    continue
                callee, callee_param, line, col = witness
                yield _violation(
                    self,
                    fn,
                    line,
                    col,
                    f"public function {qualname!r} forwards parameter "
                    f"{param!r} to {callee!r} which mutates it in place "
                    f"(as {callee_param!r}); copy before the call or "
                    "make the callee pure",
                )


# ----------------------------------------------------------------------
# missing-instrumentation
# ----------------------------------------------------------------------
@register_project_rule
class MissingInstrumentationRule(ProjectRule):
    """Hot-path public functions should open a span or emit health gauges."""

    id = "missing-instrumentation"
    summary = (
        "hot-path public functions reachable from CLI/experiment entry "
        "points should open a span or emit a health.* gauge"
    )
    rationale = (
        "The obs layer exists so numerical-health regressions surface in "
        "traces (conditioning, fallbacks, volume drift); an "
        "uninstrumented hot-path function is a blind spot exactly where "
        "interpolation error accumulates."
    )
    severity = "warning"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        graph, dataflow = _analysis_state(project)
        entries = [
            qualname
            for qualname, fn in project.functions.items()
            if fn.is_public
            and fn.parent_qualname is None
            and _in_modules(fn.module_name, _ENTRY_MODULES)
            and (fn.name.startswith("run") or fn.name == "main")
        ]
        reachable = graph.reachable_from(entries)
        hot = [
            qualname
            for qualname in sorted(reachable)
            if _is_public_api(fn := project.functions[qualname])
            and _in_modules(fn.module_name, _HOT_PREFIXES)
        ]

        def covered(qualname: str) -> bool:
            if dataflow.facts[qualname].instrumented:
                return True
            # One level of delegation: a thin public wrapper whose
            # direct callee is instrumented counts as covered.
            return any(
                callee in dataflow.facts
                and dataflow.facts[callee].instrumented
                for callee in graph.edges.get(qualname, ())
            )

        n_covered = sum(1 for qualname in hot if covered(qualname))
        project.stats["instrumentation_coverage"] = {
            "entry_points": len(entries),
            "hot_path_functions": len(hot),
            "instrumented": n_covered,
            "coverage_pct": round(100.0 * n_covered / len(hot), 1)
            if hot
            else 100.0,
        }
        for qualname in hot:
            if covered(qualname):
                continue
            fn = project.functions[qualname]
            yield _violation(
                self,
                fn,
                fn.lineno,
                int(fn.node.col_offset),
                f"hot-path public function {qualname!r} is reachable "
                "from CLI/experiment entry points but neither opens a "
                "span nor emits a health.* gauge; add obs "
                "instrumentation or delegate to an instrumented helper",
            )


# ----------------------------------------------------------------------
# cross-float-eq
# ----------------------------------------------------------------------
@register_project_rule
class CrossFloatEqRule(ProjectRule):
    """No exact equality against float-returning project functions."""

    id = "cross-float-eq"
    summary = (
        "no ==/!= against the result of a project function that returns "
        "float"
    )
    rationale = (
        "The per-file float-eq rule only sees literal operands; comparing "
        "the *result* of an error metric or volume computation with == "
        "has the same roundoff failure mode, hidden behind a call edge."
    )
    severity = "error"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        _graph, dataflow = _analysis_state(project)

        def returns_float(fn: FunctionInfo, call: ast.Call) -> bool:
            target = project.resolve_call(fn, call)
            if target is None:
                return False
            facts = dataflow.facts.get(target)
            return facts is not None and facts.returns_float

        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            for node in iter_own_nodes(fn.node):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                for op, left, right in zip(
                    node.ops, operands[:-1], operands[1:]
                ):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    offender = None
                    if isinstance(left, ast.Call) and returns_float(
                        fn, left
                    ):
                        offender = left
                    elif isinstance(right, ast.Call) and returns_float(
                        fn, right
                    ):
                        offender = right
                    if offender is None:
                        continue
                    callee = project.resolve_call(fn, offender)
                    yield _violation(
                        self,
                        fn,
                        int(node.lineno),
                        int(node.col_offset),
                        f"exact ==/!= against the float result of "
                        f"{callee!r}; use np.isclose or "
                        "repro.utils.arrays helpers",
                    )
                    break


# ----------------------------------------------------------------------
# sparse-densify
# ----------------------------------------------------------------------
#: Methods whose batch/sharded entry points anchor the sparse hot path.
_DENSIFY_ROOTS = (
    "repro.core.batch.BatchAligner.fit",
    "repro.core.batch.BatchAligner.fit_predict",
    "repro.core.batch.BatchAligner.predict",
    "repro.core.batch.BatchAligner.predict_dms",
    "repro.core.shard.ShardedAligner.fit",
    "repro.core.shard.ShardedAligner.predict",
)

#: The CSR kernel module is scanned wholesale on top of the call-graph
#: reachable set: its dense-oracle ``values`` property is reached via
#: attribute access, which the static call graph cannot see.
_DENSIFY_MODULES = ("repro.core.sparse_stack",)

#: Call names that materialise a dense copy of a SciPy sparse matrix.
_DENSIFY_METHODS = frozenset({"toarray", "todense"})

#: ``np.*`` converters that densify when handed a CSR value stack.
_DENSIFY_CONVERTERS = frozenset({"asarray", "ascontiguousarray"})

#: Variable / attribute names positively identified as CSR value
#: storage (the stack's reference matrix).  The converter check fires
#: only on these, keeping the rule quiet on legitimate dense inputs.
_CSR_NAMES = frozenset({"ref_matrix"})


def _terminal_name(node: ast.expr) -> str | None:
    """``a.b.ref_matrix`` / ``ref_matrix`` -> ``"ref_matrix"``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_project_rule
class SparseDensifyRule(ProjectRule):
    """No dense materialisation of CSR stacks on the batch hot path."""

    id = "sparse-densify"
    summary = (
        "functions reachable from BatchAligner.fit/predict must not "
        "densify the CSR value stack (.toarray()/.todense(), or "
        "np.asarray on the reference matrix)"
    )
    rationale = (
        "The sparse kernel path exists so batch memory scales with "
        "stored entries, not k * nnz; one .toarray() on the hot path "
        "silently reintroduces the dense (k, nnz) matrix the refactor "
        "removed.  Intentional dense escapes (the oracle property, the "
        "dense storage mode) carry an allow comment or live in the "
        "committed baseline."
    )
    severity = "warning"

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        graph, _dataflow = _analysis_state(project)
        scan = graph.reachable_from(_DENSIFY_ROOTS)
        scan.update(
            qualname
            for qualname, fn in project.functions.items()
            if _in_modules(fn.module_name, _DENSIFY_MODULES)
        )
        for qualname in sorted(scan):
            fn = project.functions[qualname]
            for node in iter_own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DENSIFY_METHODS
                ):
                    yield _violation(
                        self,
                        fn,
                        int(node.lineno),
                        int(node.col_offset),
                        f"{qualname!r} is on the batch hot path but "
                        f"calls .{node.func.attr}(), materialising a "
                        "dense copy of a sparse matrix; use the "
                        "SparseDMStack kernels instead",
                    )
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DENSIFY_CONVERTERS
                    and node.args
                    and _terminal_name(node.args[0]) in _CSR_NAMES
                ):
                    yield _violation(
                        self,
                        fn,
                        int(node.lineno),
                        int(node.col_offset),
                        f"{qualname!r} converts the CSR reference "
                        f"matrix through np.{node.func.attr}, which "
                        "densifies it; operate on the sparse kernels "
                        "or gate behind the dense storage mode",
                    )
