"""Per-function dataflow facts for the deep rule families.

For every project function this pass extracts the facts the
concurrency/purity/instrumentation rules combine with call-graph
reachability:

* **Shared-state writes** -- in-place writes whose target is module
  state, closure state of an enclosing function, or a local *derived*
  from module state (``for session in _ACTIVE.get(): session.counters[k]
  = ...`` is a write to state rooted at module-level ``_ACTIVE``).
  Each write records whether it sits inside a ``with <...lock...>:``
  block, so the concurrency rule can distinguish guarded from unguarded
  mutation.
* **Parameter mutation** -- which parameters a function writes in place
  (the per-file ``ndarray-mutation`` logic), plus every call site that
  forwards a parameter into a callee, from which
  :meth:`DataflowIndex.transitive_param_mutations` computes the
  interprocedural closure the ``alias-mutation`` rule reports.
* **Instrumentation** -- whether the function opens an obs span/timed
  span, emits an event/counter, or sets a ``health.*`` gauge.
* **Float returns** and **RNG bindings** -- for the cross-call float
  comparison rule and the shared-Generator thread rule.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, iter_own_nodes
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectContext

__all__ = ["DataflowIndex", "FunctionFacts", "SharedWrite"]

#: Method names that mutate their receiver in place (containers and
#: ndarrays alike).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "move_to_end",
        "sort",
        "fill",
        "resize",
        "partition",
        "put",
        "setflags",
        "itemset",
    }
)

#: Obs entry points that open a span (or a whole session).
_SPAN_OPENERS = frozenset({"span", "timed_span", "trace"})
#: Obs entry points that emit point records / counters.
_EMITTERS = frozenset({"event", "incr"})
#: Telemetry entry points that open a cross-process SpanCapture: a
#: worker wrapped in one ships its records back with its partials
#: instead of losing them in the pickled session copy.
_CAPTURE_OPENERS = frozenset({"worker_capture"})
#: Obs gauge setters; count as instrumentation when the gauge name
#: literal starts with "health.".
_GAUGE_SETTERS = frozenset({"set_gauge", "set_gauge_max", "set_gauge_min"})
#: RNG constructors whose results must not cross thread boundaries.
#: ``spawn_rngs`` is excluded: per-task spawned children are the
#: *correct* pattern for threaded randomness.
_RNG_CONSTRUCTORS = frozenset({"as_rng", "as_generator", "default_rng"})


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.expr) -> str | None:
    """Base ``Name`` of an attribute/subscript chain (``a.b[c].d`` -> a)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_name_of_expr(expr: ast.expr | None) -> str | None:
    """Root Name of an arbitrary expression (calls unwrapped too)."""
    while expr is not None:
        if isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        elif isinstance(expr, ast.Name):
            return expr.id
        else:
            return None
    return None


def _is_lock_guard(item: ast.withitem) -> bool:
    """Whether one ``with`` item looks like acquiring a lock."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = _dotted(expr)
    return name is not None and "lock" in name.lower()


def _iter_guarded_statements(
    stmts: list[ast.stmt], guarded: bool
) -> Iterator[tuple[ast.stmt, bool]]:
    """Yield ``(statement, inside_lock_guard)`` pairs, depth first,
    stopping at nested function boundaries.

    Each statement is yielded exactly once; nested statement lists
    (``if``/``for``/``with``/``try`` bodies) are traversed with the
    guard state of their enclosing ``with`` blocks.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stmt_guarded = guarded
        if isinstance(stmt, (ast.With, ast.AsyncWith)) and any(
            _is_lock_guard(item) for item in stmt.items
        ):
            stmt_guarded = True
        yield stmt, stmt_guarded
        for field_name in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field_name, None)
            if value:
                yield from _iter_guarded_statements(
                    list(value), stmt_guarded
                )
        for handler in getattr(stmt, "handlers", ()):
            yield from _iter_guarded_statements(
                list(handler.body), stmt_guarded
            )


def _iter_statement_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """AST nodes of the *expression* parts of one statement: its direct
    fields that are expressions, walked fully (expressions cannot
    contain statements), excluding nested statement lists."""
    for _name, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield from ast.walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, (ast.expr, ast.withitem, ast.keyword)):
                    yield from ast.walk(item)


@dataclass(frozen=True)
class SharedWrite:
    """One in-place write to state visible outside the function."""

    line: int
    col: int
    #: The written expression, roughly as source text.
    target: str
    #: "global" (module-level name), "closure" (enclosing function
    #: local), or "derived" (local obtained from a module-level name).
    kind: str
    #: Module-level / closure name the state is rooted at (for messages).
    root: str
    #: True when the write sits inside a ``with <...lock...>:`` block.
    guarded: bool


@dataclass
class FunctionFacts:
    """Everything the deep rules need to know about one function."""

    qualname: str
    shared_writes: list[SharedWrite] = field(default_factory=list)
    #: Parameters this function mutates in place, directly.
    mutated_params: set[str] = field(default_factory=set)
    #: ``(callee_qualname, callee_param, own_param, line, col)`` for
    #: every parameter forwarded into a resolved project call.
    param_forwards: list[tuple[str, str, str, int, int]] = field(
        default_factory=list
    )
    instrumented: bool = False
    #: Which obs calls made it instrumented (for reports).
    instrumentation: list[str] = field(default_factory=list)
    opens_trace_session: bool = False
    #: Whether the function opens a cross-process SpanCapture
    #: (``worker_capture``); relevant only for process-pool workers.
    uses_worker_capture: bool = False
    #: ``(line, col, api)`` of every span/event/counter/gauge call --
    #: the record-producing sites the process-capture rule anchors to.
    obs_records: list[tuple[int, int, str]] = field(default_factory=list)
    #: ``(line, col, var)`` of direct ContextVar ``.set()``/``.reset()``.
    contextvar_mutations: list[tuple[int, int, str]] = field(
        default_factory=list
    )
    returns_float: bool = False
    #: Local names bound to a freshly constructed RNG inside this
    #: function (candidates for unsafe sharing with nested workers).
    rng_bindings: set[str] = field(default_factory=set)
    #: Names read by this function but bound by an enclosing function.
    free_variables: set[str] = field(default_factory=set)


def _local_bindings(fn: FunctionInfo) -> set[str]:
    """Names bound inside ``fn`` (params, assignments, loops, withs)."""
    bound = set(fn.params) | {"self", "cls"}
    node = fn.node
    if node.args.vararg:
        bound.add(node.args.vararg.arg)
    if node.args.kwarg:
        bound.add(node.args.kwarg.arg)
    for sub in iter_own_nodes(node):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            bound.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(sub.name)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
    return bound


def _returns_float(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Statically float-returning: ``-> float`` or float-literal returns."""
    returns = node.returns
    if isinstance(returns, ast.Name) and returns.id == "float":
        return True
    if isinstance(returns, ast.Constant) and returns.value == "float":
        return True
    values = [
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Return) and sub.value is not None
    ]
    return bool(values) and all(
        isinstance(v, ast.Constant) and isinstance(v.value, float)
        for v in values
    )


class DataflowIndex:
    """Facts for every project function, plus interprocedural closures."""

    def __init__(self, project: ProjectContext, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.facts: dict[str, FunctionFacts] = {}
        for fn in project.functions.values():
            self.facts[fn.qualname] = self._analyze(fn)
        self._transitive_mutations: dict[str, set[str]] | None = None

    # -- single-function analysis --------------------------------------
    def _enclosing_locals(self, fn: FunctionInfo) -> set[str]:
        """Names bound by any enclosing function (closure candidates)."""
        names: set[str] = set()
        parent = (
            self.project.functions.get(fn.parent_qualname)
            if fn.parent_qualname
            else None
        )
        while parent is not None:
            names |= _local_bindings(parent)
            parent = (
                self.project.functions.get(parent.parent_qualname)
                if parent.parent_qualname
                else None
            )
        return names

    def _derived_locals(
        self, fn: FunctionInfo, shared_roots: set[str], module: ModuleInfo
    ) -> dict[str, str]:
        """Locals obtained *from* module-level state: ``v = NAME...`` or
        ``for v in NAME...``; writes through them are shared writes."""
        derived: dict[str, str] = {}
        sources = shared_roots | module.contextvars
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Assign):
                root = _root_name_of_expr(node.value)
                if root in sources:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            derived[target.id] = root or ""
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                root = _root_name_of_expr(node.iter)
                if root in sources and isinstance(node.target, ast.Name):
                    derived[node.target.id] = root or ""
        return derived

    def _analyze(self, fn: FunctionInfo) -> FunctionFacts:
        facts = FunctionFacts(qualname=fn.qualname)
        module = self.project.module_of(fn)
        facts.returns_float = _returns_float(fn.node)
        local = _local_bindings(fn)
        closure = self._enclosing_locals(fn) - local
        global_decls: set[str] = set()
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)
        shared_roots = set(module.mutable_globals) | global_decls
        derived = self._derived_locals(fn, shared_roots, module)
        facts.free_variables = {
            sub.id
            for sub in iter_own_nodes(fn.node)
            if isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id in closure
        }

        def classify(root: str) -> tuple[str, str] | None:
            if root in derived:
                return "derived", derived[root] or root
            if root in global_decls:
                return "global", root
            if root in module.mutable_globals and root not in local:
                return "global", root
            if root in closure and root not in local:
                return "closure", root
            return None

        self._scan_writes(fn, facts, classify, global_decls)
        self._scan_calls(fn, facts, module)
        self._scan_rng_bindings(fn, facts)
        return facts

    def _scan_writes(
        self,
        fn: FunctionInfo,
        facts: FunctionFacts,
        classify: Callable[[str], tuple[str, str] | None],
        global_decls: set[str],
    ) -> None:
        params = set(fn.params)

        def record(node: ast.AST, target: ast.expr, guarded: bool) -> None:
            root = _root_name(target)
            if root is None:
                return
            kind_root = classify(root)
            if kind_root is None:
                return
            kind, state_root = kind_root
            facts.shared_writes.append(
                SharedWrite(
                    line=int(getattr(node, "lineno", 1)),
                    col=int(getattr(node, "col_offset", 0)),
                    target=ast.unparse(target),
                    kind=kind,
                    root=state_root,
                    guarded=guarded,
                )
            )

        for stmt, guarded in _iter_guarded_statements(
            list(fn.node.body), False
        ):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    # Rebinding a local is not a shared write; only
                    # writes *through* an object (subscript/attribute)
                    # or rebinds of a declared-global name are.
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        record(stmt, target, guarded)
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in global_decls
                    ):
                        record(stmt, target, guarded)
                    # Direct parameter mutation: the interprocedural
                    # seed for the alias-mutation fixpoint.
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in params
                    ):
                        facts.mutated_params.add(target.value.id)
                    elif (
                        isinstance(stmt, ast.AugAssign)
                        and isinstance(target, ast.Name)
                        and target.id in params
                    ):
                        facts.mutated_params.add(target.id)
            # Mutator-method calls anywhere in this statement's
            # expressions (x.append(...), registry.update(...)).
            for node in _iter_statement_exprs(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    not isinstance(func, ast.Attribute)
                    or func.attr not in MUTATOR_METHODS
                ):
                    continue
                root = _root_name(func.value)
                if root is None:
                    continue
                if root in params and isinstance(func.value, ast.Name):
                    facts.mutated_params.add(root)
                record(node, func.value, guarded)

    def _scan_calls(
        self, fn: FunctionInfo, facts: FunctionFacts, module: ModuleInfo
    ) -> None:
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is not None:
                self._classify_obs_call(facts, module, node, name)
            # Parameter forwarding into resolved project calls.
            target = self.project.resolve_call(fn, node)
            if target is None or target not in self.project.functions:
                continue
            callee = self.project.functions[target]
            for index, arg in enumerate(node.args):
                if (
                    isinstance(arg, ast.Name)
                    and arg.id in fn.params
                    and index < len(callee.params)
                ):
                    facts.param_forwards.append(
                        (
                            target,
                            callee.params[index],
                            arg.id,
                            int(node.lineno),
                            int(node.col_offset),
                        )
                    )
            for keyword in node.keywords:
                if (
                    keyword.arg is not None
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in fn.params
                    and keyword.arg in callee.params
                ):
                    facts.param_forwards.append(
                        (
                            target,
                            keyword.arg,
                            keyword.value.id,
                            int(node.lineno),
                            int(node.col_offset),
                        )
                    )

    def _classify_obs_call(
        self,
        facts: FunctionFacts,
        module: ModuleInfo,
        node: ast.Call,
        name: str,
    ) -> None:
        resolved = module.imports.get(name, name)
        tail = resolved.split(".")[-1]
        is_obs = (
            resolved.startswith("repro.obs")
            or name.split(".")[0] == "obs"
            # A bare name that resolves to itself was defined locally or
            # star-imported; accept it as obs only for the unambiguous
            # helper names.
            or (resolved == name and "." not in name)
        )
        position = (int(node.lineno), int(node.col_offset))
        if tail in _SPAN_OPENERS and is_obs:
            facts.instrumented = True
            facts.instrumentation.append(tail)
            if tail == "trace":
                facts.opens_trace_session = True
            else:
                # ``trace`` opens a *fresh* session owned by this
                # function; only span records into inherited sessions
                # are at risk across a process boundary.
                facts.obs_records.append((*position, tail))
        elif tail in _CAPTURE_OPENERS and is_obs:
            facts.instrumented = True
            facts.instrumentation.append(tail)
            facts.uses_worker_capture = True
        elif tail in _EMITTERS and is_obs:
            facts.instrumented = True
            facts.instrumentation.append(tail)
            facts.obs_records.append((*position, tail))
        elif tail in _GAUGE_SETTERS and is_obs and node.args:
            facts.obs_records.append((*position, tail))
            first = node.args[0]
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and first.value.startswith("health.")
            ):
                facts.instrumented = True
                facts.instrumentation.append(f"{tail}:{first.value}")
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "stage"
        ):
            # StageTimer.stage() is a span-emitting façade.
            facts.instrumented = True
            facts.instrumentation.append("stage")
            facts.obs_records.append((*position, "stage"))
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("set", "reset")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in module.contextvars
        ):
            facts.contextvar_mutations.append(
                (
                    int(node.lineno),
                    int(node.col_offset),
                    node.func.value.id,
                )
            )

    def _scan_rng_bindings(
        self, fn: FunctionInfo, facts: FunctionFacts
    ) -> None:
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                name = _dotted(node.value.func)
                if (
                    name is not None
                    and name.split(".")[-1] in _RNG_CONSTRUCTORS
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            facts.rng_bindings.add(target.id)
        for arg in (
            *fn.node.args.posonlyargs,
            *fn.node.args.args,
            *fn.node.args.kwonlyargs,
        ):
            annotation = arg.annotation
            dotted = _dotted(annotation) if annotation is not None else None
            if dotted is not None and dotted.split(".")[-1] == "Generator":
                facts.rng_bindings.add(arg.arg)

    # -- interprocedural closures --------------------------------------
    def transitive_param_mutations(self) -> dict[str, set[str]]:
        """Fixpoint: parameters mutated directly *or via a callee*."""
        if self._transitive_mutations is not None:
            return self._transitive_mutations
        mutated = {
            qualname: set(facts.mutated_params)
            for qualname, facts in self.facts.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname, facts in self.facts.items():
                for (
                    callee,
                    callee_param,
                    own_param,
                    _line,
                    _col,
                ) in facts.param_forwards:
                    if (
                        callee_param in mutated.get(callee, set())
                        and own_param not in mutated[qualname]
                    ):
                        mutated[qualname].add(own_param)
                        changed = True
        self._transitive_mutations = mutated
        return mutated

    def mutation_witness(
        self, qualname: str, param: str
    ) -> tuple[str, str, int, int] | None:
        """The call site through which ``param`` of ``qualname`` gets
        mutated: ``(callee, callee_param, line, col)`` -- or ``None``
        when the mutation is direct (no forwarding edge involved)."""
        mutated = self.transitive_param_mutations()
        facts = self.facts.get(qualname)
        if facts is None:
            return None
        for callee, callee_param, own_param, line, col in (
            facts.param_forwards
        ):
            if own_param == param and callee_param in mutated.get(
                callee, set()
            ):
                return callee, callee_param, line, col
        return None
