"""The ``repro-lint`` engine: file discovery, parsing, rule dispatch.

Public entry points:

* :func:`lint_paths` -- lint files and/or directory trees.
* :func:`lint_file` -- lint one file.
* :func:`lint_source` -- lint a source string (used heavily by tests).

All three return a sorted list of
:class:`~repro.analysis.violations.Violation`; an empty list means the
code is clean.  Suppression comments (see
:mod:`repro.analysis.suppressions`) are honoured everywhere.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.analysis.registry import (
    FileContext,
    Rule,
    resolve_project_rules,
    resolve_rules,
)
from repro.analysis.suppressions import Suppressions, collect_suppressions
from repro.analysis.violations import Violation

#: Rule id used for files that fail to parse.
SYNTAX_ERROR_RULE = "syntax-error"

#: Rule id for suppression comments that no longer match any violation
#: (reported by the deep pass only, which is the only pass that sees
#: every rule's raw findings at once).
STALE_SUPPRESSION_RULE = "stale-suppression"


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    ``src/repro/core/solver.py`` -> ``repro.core.solver``; files outside
    a ``repro`` tree fall back to their stem so scoped rules simply do
    not apply to them.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts) if parts else ""


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise ValidationError(f"no such file or directory: {path!r}")
    return found


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    module: str | None = None,
    rules: Iterable[Rule] | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint a source string and return sorted violations.

    Parameters
    ----------
    source:
        Python source text.
    filename:
        Path used in reports (and for module derivation when ``module``
        is not given).
    module:
        Dotted module name used for rule scoping; derived from
        ``filename`` when omitted.  Tests use this to exercise
        core-scoped rules on fixture snippets.
    rules:
        Pre-instantiated rules (overrides ``select``).
    select:
        Rule ids to run; all registered rules when ``None``.
    """
    if module is None:
        module = module_name_for_path(filename)
    active = list(rules) if rules is not None else resolve_rules(select)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Violation(
                path=filename,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0),
                rule_id=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = collect_suppressions(source)
    if suppressions.skip_file:
        return []
    ctx = FileContext(
        path=filename, module=module, tree=tree, source=source
    )
    violations = [
        violation
        for rule in active
        if rule.applies_to(module)
        for violation in rule.check(ctx)
        if not suppressions.is_suppressed(violation.line, violation.rule_id)
    ]
    return sorted(violations)


def lint_file(
    path: str,
    *,
    module: str | None = None,
    rules: Iterable[Rule] | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint one file from disk (see :func:`lint_source`)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(
        source, filename=path, module=module, rules=rules, select=select
    )


def lint_paths(
    paths: Sequence[str],
    *,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths``; returns sorted violations."""
    rules = resolve_rules(select)
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, rules=rules))
    return sorted(violations)


# ----------------------------------------------------------------------
# Deep (whole-program) pass
# ----------------------------------------------------------------------
@dataclass
class DeepReport:
    """Result of one ``--deep`` run: violations plus run-level stats.

    ``stats`` carries the numbers the reporters surface next to the
    violation list -- file/function/fan-out counts and the
    instrumentation-coverage summary published by the
    ``missing-instrumentation`` rule.
    """

    violations: list[Violation] = field(default_factory=list)
    stats: dict[str, object] = field(default_factory=dict)


def deep_lint_paths(
    paths: Sequence[str],
    *,
    select: Sequence[str] | None = None,
) -> DeepReport:
    """Run the per-file rules *and* the whole-program rules over ``paths``.

    The deep pass parses every file once, runs the classic per-file
    rules, builds the project model
    (:class:`~repro.analysis.project.ProjectContext`) over all parsed
    modules, runs the registered
    :class:`~repro.analysis.registry.ProjectRule` subclasses, applies
    per-line suppressions to everything, and finally reports
    ``stale-suppression`` for allow-comments that matched nothing --
    the deep pass is the only one that sees every rule's raw findings,
    so only it can prove a suppression dead.
    """
    # Imported here, not at module top: the project model is only needed
    # for --deep, and keeping the fast path import-light keeps plain
    # lint startup unchanged.
    from repro.analysis.project import ProjectContext

    file_rules = resolve_rules(select)
    project_rules = resolve_project_rules(select)
    active_ids = {rule.id for rule in file_rules} | {
        rule.id for rule in project_rules
    }

    report = DeepReport()
    raw: list[Violation] = []
    parsed: list[tuple[str, str, ast.Module, str]] = []
    suppression_map: dict[str, Suppressions] = {}
    skipped_files = 0
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        module = module_name_for_path(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    path=path,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    rule_id=SYNTAX_ERROR_RULE,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        suppressions = collect_suppressions(source)
        if suppressions.skip_file:
            skipped_files += 1
            continue
        suppression_map[path] = suppressions
        parsed.append((path, module, tree, source))
        ctx = FileContext(path=path, module=module, tree=tree, source=source)
        for rule in file_rules:
            if rule.applies_to(module):
                raw.extend(rule.check(ctx))

    project = ProjectContext.build(parsed)
    for project_rule in project_rules:
        raw.extend(project_rule.check_project(project))

    matched: set[tuple[str, int, str]] = set()
    for violation in raw:
        matched.add((violation.path, violation.line, violation.rule_id))
        suppressions = suppression_map.get(violation.path)
        if suppressions is not None and suppressions.is_suppressed(
            violation.line, violation.rule_id
        ):
            continue
        report.violations.append(violation)

    # Stale suppressions: an allow-comment for an active rule on a line
    # where that rule (no longer) fires is dead weight -- and dead
    # suppressions are how real regressions sneak back in silently.
    for path, suppressions in suppression_map.items():
        for line, rule_ids in suppressions.by_line.items():
            for rule_id in sorted(rule_ids & active_ids):
                if (path, line, rule_id) not in matched:
                    report.violations.append(
                        Violation(
                            path=path,
                            line=line,
                            col=0,
                            rule_id=STALE_SUPPRESSION_RULE,
                            message=(
                                f"suppression allow[{rule_id}] matches no "
                                "violation on this line; remove the stale "
                                "comment"
                            ),
                        )
                    )

    report.violations.sort()
    stats = {
        key: value
        for key, value in project.stats.items()
        if not key.startswith("_")
    }
    graph_state = project.stats.get("_analysis_state")
    fanouts = graph_state[0].fanouts if graph_state else []
    # Count *sites*, not fan-out entries: a parameter-valued site can
    # resolve to several workers, one entry each, all sharing its
    # caller/line/col.
    thread_sites = len(
        {(f.caller, f.line, f.col) for f in fanouts if f.kind == "thread"}
    )
    process_sites = len(
        {(f.caller, f.line, f.col) for f in fanouts if f.kind == "process"}
    )
    report.stats = {
        "files": len(parsed),
        "skipped_files": skipped_files,
        "modules": len(project.modules),
        "functions": len(project.functions),
        "classes": len(project.classes),
        "thread_fanout_sites": thread_sites,
        "process_fanout_sites": process_sites,
        **stats,
    }
    return report
