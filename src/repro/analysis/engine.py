"""The ``repro-lint`` engine: file discovery, parsing, rule dispatch.

Public entry points:

* :func:`lint_paths` -- lint files and/or directory trees.
* :func:`lint_file` -- lint one file.
* :func:`lint_source` -- lint a source string (used heavily by tests).

All three return a sorted list of
:class:`~repro.analysis.violations.Violation`; an empty list means the
code is clean.  Suppression comments (see
:mod:`repro.analysis.suppressions`) are honoured everywhere.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Sequence

from repro.errors import ValidationError
from repro.analysis.registry import FileContext, Rule, resolve_rules
from repro.analysis.suppressions import collect_suppressions
from repro.analysis.violations import Violation

#: Rule id used for files that fail to parse.
SYNTAX_ERROR_RULE = "syntax-error"


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    ``src/repro/core/solver.py`` -> ``repro.core.solver``; files outside
    a ``repro`` tree fall back to their stem so scoped rules simply do
    not apply to them.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts) if parts else ""


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise ValidationError(f"no such file or directory: {path!r}")
    return found


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    module: str | None = None,
    rules: Iterable[Rule] | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint a source string and return sorted violations.

    Parameters
    ----------
    source:
        Python source text.
    filename:
        Path used in reports (and for module derivation when ``module``
        is not given).
    module:
        Dotted module name used for rule scoping; derived from
        ``filename`` when omitted.  Tests use this to exercise
        core-scoped rules on fixture snippets.
    rules:
        Pre-instantiated rules (overrides ``select``).
    select:
        Rule ids to run; all registered rules when ``None``.
    """
    if module is None:
        module = module_name_for_path(filename)
    active = list(rules) if rules is not None else resolve_rules(select)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Violation(
                path=filename,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0),
                rule_id=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = collect_suppressions(source)
    if suppressions.skip_file:
        return []
    ctx = FileContext(
        path=filename, module=module, tree=tree, source=source
    )
    violations = [
        violation
        for rule in active
        if rule.applies_to(module)
        for violation in rule.check(ctx)
        if not suppressions.is_suppressed(violation.line, violation.rule_id)
    ]
    return sorted(violations)


def lint_file(
    path: str,
    *,
    module: str | None = None,
    rules: Iterable[Rule] | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint one file from disk (see :func:`lint_source`)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(
        source, filename=path, module=module, rules=rules, select=select
    )


def lint_paths(
    paths: Sequence[str],
    *,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths``; returns sorted violations."""
    rules = resolve_rules(select)
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, rules=rules))
    return sorted(violations)
