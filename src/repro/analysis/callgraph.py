"""Project call graph + thread fan-out discovery for ``--deep`` rules.

Built on :class:`~repro.analysis.project.ProjectContext`, this module
answers the two reachability questions the deep rule families ask:

* *What can this entry point reach?* -- instrumentation coverage walks
  forward from the CLI/experiment entry points to find the hot-path
  functions a user request actually executes.
* *What runs on a worker?* -- the concurrency rules walk forward from
  every callable handed to ``ThreadPoolExecutor.submit/map``,
  ``ProcessPoolExecutor.submit/map`` or ``threading.Thread(target=...)``;
  anything reachable from there may execute concurrently with (threads)
  or in a different address space from (processes) the submitting
  function.  Each fan-out site carries a ``kind`` so the rules can
  phrase the failure mode correctly: thread workers race on shared
  memory, process workers silently lose writes at the pickle boundary.

Resolution inherits the conservative stance of the project model: an
edge exists only when the callee is positively identified.  The one
deliberate recall exception is :func:`_resolve_thread_callee`'s
unique-method fallback -- a bound method handed to ``pool.map`` (e.g.
``stack.dm_from_values``) resolves by method name when exactly one
project class defines it, because missing a thread entry silently
disables every concurrency check downstream of it.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, replace

from repro.analysis.project import FunctionInfo, ProjectContext

__all__ = ["CallGraph", "ThreadFanout", "iter_own_nodes"]

#: Constructors that create a *thread* execution context.
_THREAD_POOLS = frozenset(
    {
        "ThreadPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "futures.ThreadPoolExecutor",
    }
)
#: Constructors that create a *process* execution context.  Workers
#: there share no memory: a module/closure write is not a race but a
#: silently-lost update (each child mutates its own copy), and a closed
#: over Generator is pickled per task, duplicating its stream.
_PROCESS_POOLS = frozenset(
    {
        "ProcessPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "futures.ProcessPoolExecutor",
    }
)
_THREAD_CLASSES = frozenset({"Thread", "threading.Thread"})

#: Executor methods whose first argument is the submitted callable.
_SUBMIT_METHODS = frozenset({"submit", "map"})


@dataclass(frozen=True)
class ThreadFanout:
    """One site where a callable is handed to another thread or process.

    ``kind`` is ``"thread"`` for ``ThreadPoolExecutor`` /
    ``threading.Thread`` sites and ``"process"`` for
    ``ProcessPoolExecutor`` sites.
    """

    caller: str
    callee: str | None
    api: str
    line: int
    col: int
    kind: str = "thread"


def iter_own_nodes(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterable[ast.AST]:
    """AST nodes of one function body, *excluding* nested function bodies.

    Nested defs own their statements (they have their own
    :class:`~repro.analysis.project.FunctionInfo`); attributing their
    calls to the enclosing function would make every outer function
    look like it performs its workers' writes.
    """
    queue: deque[ast.AST] = deque()
    for stmt in fn_node.body:
        queue.append(stmt)
    while queue:
        node = queue.popleft()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # stop at the nested def's boundary
        queue.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """Caller -> callee edges over project functions, plus fan-out sites.

    Attributes
    ----------
    edges:
        Caller qualname -> set of *project* callee qualnames.
    external_calls:
        Caller qualname -> dotted names of identified non-project
        targets (``numpy.zeros``, ``repro.obs.trace.span`` when obs is
        outside the analyzed tree).  The dataflow pass reads these for
        instrumentation detection.
    fanouts:
        Every :class:`ThreadFanout` found, in file order.
    """

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.edges: dict[str, set[str]] = {}
        self.external_calls: dict[str, set[str]] = {}
        self.fanouts: list[ThreadFanout] = []
        #: ``(index into fanouts, parameter name)`` for sites whose
        #: submitted callable is a *parameter* of the submitting
        #: function -- resolved in a second pass over its call sites.
        self._param_fanouts: list[tuple[int, str]] = []
        for fn in project.functions.values():
            self._index_function(fn)
        self._resolve_parameter_fanouts()

    # -- construction ---------------------------------------------------
    def _index_function(self, fn: FunctionInfo) -> None:
        edges = self.edges.setdefault(fn.qualname, set())
        external = self.external_calls.setdefault(fn.qualname, set())
        pool_vars = self._pool_variables(fn)
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            target = self.project.resolve_call(fn, node)
            if target is not None:
                if target in self.project.functions:
                    edges.add(target)
                elif target in self.project.classes:
                    init = self.project.resolve_method(
                        self.project.classes[target], "__init__"
                    )
                    if init is not None:
                        edges.add(init)
                else:
                    external.add(target)
            self._maybe_record_fanout(fn, node, pool_vars)

    def _pool_kind(self, fn: FunctionInfo, expr: ast.expr) -> str | None:
        """``"thread"``/``"process"`` when ``expr`` constructs a pool."""
        if not isinstance(expr, ast.Call):
            return None
        name = _dotted(expr.func)
        if name is None:
            return None
        module = self.project.module_of(fn)
        resolved = module.imports.get(name.split(".")[0], name)
        if (
            name in _THREAD_POOLS
            or resolved in _THREAD_POOLS
            or name.split(".")[-1] == "ThreadPoolExecutor"
        ):
            return "thread"
        if (
            name in _PROCESS_POOLS
            or resolved in _PROCESS_POOLS
            or name.split(".")[-1] == "ProcessPoolExecutor"
        ):
            return "process"
        return None

    def _pool_variables(self, fn: FunctionInfo) -> dict[str, str]:
        """Local names bound to a pool instance inside ``fn`` -> kind."""
        pools: dict[str, str] = {}
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Assign):
                kind = self._pool_kind(fn, node.value)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            pools[target.id] = kind
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    kind = self._pool_kind(fn, item.context_expr)
                    if kind is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        pools[item.optional_vars.id] = kind
        return pools

    def _maybe_record_fanout(
        self, fn: FunctionInfo, call: ast.Call, pool_vars: dict[str, str]
    ) -> None:
        func = call.func
        callee_expr: ast.expr | None = None
        api: str | None = None
        kind: str | None = None
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
            base = func.value
            if isinstance(base, ast.Name):
                kind = pool_vars.get(base.id)
            elif isinstance(base, ast.Call):
                # Chained form: ThreadPoolExecutor(...).submit(f, ...)
                kind = self._pool_kind(fn, base)
            if kind is not None and call.args:
                callee_expr = call.args[0]
                api = func.attr
        else:
            name = _dotted(func)
            if name is not None:
                module = self.project.module_of(fn)
                resolved = module.imports.get(name.split(".")[0], name)
                if name in _THREAD_CLASSES or resolved in _THREAD_CLASSES:
                    for keyword in call.keywords:
                        if keyword.arg == "target":
                            callee_expr = keyword.value
                            api = "Thread"
                            kind = "thread"
        if callee_expr is None or api is None or kind is None:
            return
        callee = self._resolve_thread_callee(fn, callee_expr)
        if (
            callee is None
            and isinstance(callee_expr, ast.Name)
            and callee_expr.id in fn.params
        ):
            # ``pool.submit(worker, ...)`` where ``worker`` is a
            # parameter of the submitting function: the actual target
            # lives at this function's *call sites*.  Defer to the
            # second pass, which walks those sites.
            self._param_fanouts.append(
                (len(self.fanouts), callee_expr.id)
            )
        self.fanouts.append(
            ThreadFanout(
                caller=fn.qualname,
                callee=callee,
                api=api,
                line=int(call.lineno),
                col=int(call.col_offset),
                kind=kind,
            )
        )
        if callee is not None and callee in self.project.functions:
            self.edges.setdefault(fn.qualname, set()).add(callee)

    def _resolve_thread_callee(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> str | None:
        """Target of a callable handed to a thread API.

        Bare names go through normal scope resolution.  Bound methods
        (``obj.method``) fall back to a unique-method-name search over
        every project class: wrong-but-unique is impossible, and a miss
        here would silently exempt the worker from every thread rule.
        """
        if isinstance(expr, ast.Name):
            resolved = self.project.resolve_name(fn, expr.id)
            if resolved is not None:
                return resolved
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id in (
                "self",
                "cls",
            ):
                if fn.class_name is not None:
                    cls = self.project.classes.get(
                        f"{fn.module_name}.{fn.class_name}"
                    )
                    if cls is not None:
                        return self.project.resolve_method(cls, expr.attr)
            owners = [
                cls
                for cls in self.project.classes.values()
                if expr.attr in cls.methods
            ]
            if len(owners) == 1:
                return owners[0].methods[expr.attr]
        return None

    # -- parameter fan-out resolution -----------------------------------
    @staticmethod
    def _argument_for(
        call: ast.Call, position: int, param: str
    ) -> ast.expr | None:
        """The expression bound to ``param`` at one call site, if it can
        be read off positionally or by keyword (no ``*args`` in the
        way)."""
        for keyword in call.keywords:
            if keyword.arg == param:
                return keyword.value
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return None
        if position < len(call.args):
            return call.args[position]
        return None

    def _parameter_targets(
        self, qualname: str, param: str, seen: set[tuple[str, str]]
    ) -> set[str]:
        """Callables that flow into parameter ``param`` of ``qualname``.

        Walks every project call site of ``qualname`` and resolves the
        argument at that position; when the argument is itself a
        parameter of the calling function (a pass-through driver like a
        streaming wrapper delegating to the pooled runner), the search
        recurses one level up, with a ``seen`` guard against cycles.
        """
        key = (qualname, param)
        if key in seen:
            return set()
        seen.add(key)
        fn = self.project.functions.get(qualname)
        if fn is None or param not in fn.params:
            return set()
        position = fn.params.index(param)
        targets: set[str] = set()
        for other in self.project.functions.values():
            for node in iter_own_nodes(other.node):
                if not isinstance(node, ast.Call):
                    continue
                if self.project.resolve_call(other, node) != qualname:
                    continue
                arg = self._argument_for(node, position, param)
                if arg is None:
                    continue
                resolved = self._resolve_thread_callee(other, arg)
                if resolved is not None:
                    targets.add(resolved)
                elif (
                    isinstance(arg, ast.Name) and arg.id in other.params
                ):
                    targets |= self._parameter_targets(
                        other.qualname, arg.id, seen
                    )
        return targets

    def _resolve_parameter_fanouts(self) -> None:
        """Second pass: bind parameter-valued fan-out sites to the
        workers their callers actually pass in.

        Without this, ``pool.submit(worker, payload)`` inside a generic
        phase runner leaves ``callee=None`` and silently exempts every
        real worker function from the concurrency rules.  One site may
        resolve to several workers (the runner is called once per
        phase); the first replaces the unresolved entry in place and the
        rest are appended, all sharing the site's caller/line/col.
        """
        for index, param in self._param_fanouts:
            fanout = self.fanouts[index]
            targets = sorted(
                self._parameter_targets(fanout.caller, param, set())
            )
            if not targets:
                continue
            self.fanouts[index] = replace(fanout, callee=targets[0])
            for extra in targets[1:]:
                self.fanouts.append(replace(fanout, callee=extra))
            edges = self.edges.setdefault(fanout.caller, set())
            edges.update(
                target
                for target in targets
                if target in self.project.functions
            )

    # -- queries --------------------------------------------------------
    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Project functions reachable from ``roots`` (roots included
        when they are project functions)."""
        seen: set[str] = set()
        queue = deque(
            root for root in roots if root in self.project.functions
        )
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges.get(current, ()))
        return seen

    def _entries_of_kind(self, kind: str) -> set[str]:
        return {
            fanout.callee
            for fanout in self.fanouts
            if fanout.kind == kind
            and fanout.callee is not None
            and fanout.callee in self.project.functions
        }

    def thread_entries(self) -> set[str]:
        """Resolved project callees of every *thread* fan-out site."""
        return self._entries_of_kind("thread")

    def thread_reachable(self) -> set[str]:
        """Everything that may execute on a worker thread."""
        return self.reachable_from(self.thread_entries())

    def process_entries(self) -> set[str]:
        """Resolved project callees of every *process* fan-out site."""
        return self._entries_of_kind("process")

    def process_reachable(self) -> set[str]:
        """Everything that may execute in a pool worker process."""
        return self.reachable_from(self.process_entries())

    def __repr__(self) -> str:
        n_edges = sum(len(v) for v in self.edges.values())
        return (
            f"CallGraph(functions={len(self.edges)}, edges={n_edges}, "
            f"fanouts={len(self.fanouts)})"
        )
