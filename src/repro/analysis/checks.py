"""The project-specific ``repro-lint`` rules.

Each rule guards one numerical-correctness or reproducibility invariant
of the GeoAlign reproduction; the ``rationale`` strings tie them back to
the paper (and are surfaced by ``geoalign-repro lint --list-rules`` and
``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.registry import FileContext, Rule, register_rule
from repro.analysis.violations import Violation


def dotted_name(node: ast.AST) -> str | None:
    """Best-effort dotted name of a Name/Attribute chain (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _function_defs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Yield ``(def, is_public)`` for module-level functions and methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, not node.name.startswith("_")
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, not item.name.startswith("_")


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------
@register_rule
class RngDisciplineRule(Rule):
    """All Generator construction must go through ``repro.utils.rng``."""

    id = "rng-discipline"
    summary = (
        "construct numpy Generators only via repro.utils.rng "
        "(as_rng/as_generator/spawn_rngs)"
    )
    rationale = (
        "Deterministic seeding is what makes every experiment replicable "
        "(paper §4: fixed-seed evaluation); a stray default_rng() or "
        "legacy RandomState forks the seed universe silently."
    )
    allowlist = frozenset({"repro.utils.rng"})

    _BANNED_SUFFIXES = (
        "random.default_rng",
        "random.Generator",
        "random.RandomState",
        "random.seed",
    )
    _BANNED_BARE = ("default_rng", "RandomState")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            banned = name in self._BANNED_BARE or any(
                name == suffix or name.endswith("." + suffix)
                for suffix in self._BANNED_SUFFIXES
            )
            if banned:
                yield self.violation(
                    ctx,
                    node,
                    f"direct RNG construction {name!r}; route through "
                    "repro.utils.rng.as_generator so seeding stays "
                    "centralised and reproducible",
                )


# ----------------------------------------------------------------------
# float-eq
# ----------------------------------------------------------------------
@register_rule
class FloatEqualityRule(Rule):
    """No ``==``/``!=`` against float literals outside tolerance helpers."""

    id = "float-eq"
    summary = "no ==/!= comparisons against float literals"
    rationale = (
        "Volume preservation (Eq. 16) and mass conservation are checked "
        "numerically; exact float equality silently degrades to 'never "
        "true' after roundoff, which is how small conservation errors "
        "slip through (cf. arXiv:1807.04883 on compounding count error)."
    )
    allowlist = frozenset({"repro.utils.arrays"})

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # Unary minus on a float literal: -1.0
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        ):
            return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(
                    right
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "float equality comparison; use "
                        "repro.utils.arrays.is_zero / np.isclose, or add "
                        "'# repro-lint: allow[float-eq] <why>' when an "
                        "exact-zero sentinel is intentional",
                    )
                    break


# ----------------------------------------------------------------------
# ndarray-mutation
# ----------------------------------------------------------------------
@register_rule
class NdarrayMutationRule(Rule):
    """Public core/partitions functions must not mutate array parameters."""

    id = "ndarray-mutation"
    summary = (
        "no in-place mutation of parameters in public core/partitions "
        "functions"
    )
    rationale = (
        "GeoAlign re-uses reference DMs and aggregate vectors across "
        "cross-validation folds (§4.2); a public function that mutates "
        "its inputs corrupts every later fold without failing any "
        "single-call test."
    )
    scope_prefixes = ("repro.core", "repro.partitions")

    _MUTATORS = frozenset(
        {"sort", "fill", "resize", "partition", "put", "setflags", "itemset"}
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for func, is_public in _function_defs(ctx.tree):
            if not is_public:
                continue
            params = {
                arg.arg
                for arg in (
                    *func.args.posonlyargs,
                    *func.args.args,
                    *func.args.kwonlyargs,
                )
                if arg.arg not in ("self", "cls")
            }
            if not params:
                continue
            yield from self._check_function(ctx, func, params)

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        params: set[str],
    ) -> Iterator[Violation]:
        rebound: set[str] = set()
        for node in ast.walk(func):
            # A parameter rebound to a local copy is no longer the
            # caller's object; stop tracking it.
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for name_node in ast.walk(target):
                        if (
                            isinstance(name_node, ast.Name)
                            and not isinstance(
                                name_node.ctx, ast.Load
                            )
                            and name_node.id in params
                            and not isinstance(target, ast.Subscript)
                        ):
                            rebound.add(name_node.id)
        live = params - rebound
        if not live:
            return
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in live
                    ):
                        yield self.violation(
                            ctx,
                            node,
                            f"in-place write to parameter "
                            f"{target.value.id!r} of public function "
                            f"{func.name!r}; copy before mutating",
                        )
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id in live
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"augmented assignment mutates parameter "
                    f"{node.target.id!r} of public function {func.name!r} "
                    "in place for ndarray arguments; use 'x = x + ...' on "
                    "a copy",
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in live
                and node.func.attr in self._MUTATORS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"call to mutating method "
                    f"{node.func.value.id}.{node.func.attr}() on a "
                    f"parameter of public function {func.name!r}",
                )


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------
@register_rule
class BareExceptRule(Rule):
    """No bare or blanket ``except`` clauses."""

    id = "bare-except"
    summary = "no bare 'except:' and no non-reraising 'except Exception:'"
    rationale = (
        "Swallowing SolverError or ValidationError turns a detectable "
        "simplex-infeasibility (Eq. 15) into silently wrong aggregates; "
        "broad handlers are only acceptable when they re-raise (bare "
        "'raise', or wrap-and-chain 'raise ReproError(...) from exc')."
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        # A bare ``raise`` propagates the original; ``raise X(...) from
        # exc`` converts it at a boundary without losing the chain.
        # Both keep the failure observable.
        return any(
            isinstance(node, ast.Raise)
            and (node.exc is None or node.cause is not None)
            for node in ast.walk(handler)
        )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare 'except:'; catch a repro.errors type (or at "
                    "minimum re-raise)",
                )
                continue
            name = dotted_name(node.type)
            if (
                name is not None
                and name.split(".")[-1] in self._BROAD
                and not self._reraises(node)
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"broad 'except {name}:' without re-raise; catch a "
                    "repro.errors type instead",
                )


# ----------------------------------------------------------------------
# error-types
# ----------------------------------------------------------------------
@register_rule
class ErrorTypesRule(Rule):
    """``repro.core`` raises only :mod:`repro.errors` exception types."""

    id = "error-types"
    summary = "core modules raise repro.errors types, not builtins"
    rationale = (
        "Callers audit crosswalk data by catching ReproError at one "
        "integration boundary (see repro.errors); a builtin ValueError "
        "escaping from core bypasses that boundary and the CLI's error "
        "handling."
    )
    scope_prefixes = ("repro.core",)

    _BUILTIN_EXCEPTIONS = frozenset(
        {
            "Exception",
            "BaseException",
            "ValueError",
            "TypeError",
            "KeyError",
            "IndexError",
            "RuntimeError",
            "ArithmeticError",
            "ZeroDivisionError",
            "FloatingPointError",
            "OverflowError",
            "AssertionError",
            "AttributeError",
            "LookupError",
            "OSError",
            "IOError",
            "StopIteration",
            "NotImplementedError",
        }
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name in self._BUILTIN_EXCEPTIONS:
                yield self.violation(
                    ctx,
                    node,
                    f"core code raises builtin {name}; raise a "
                    "repro.errors type so ReproError stays the single "
                    "catchable root",
                )


# ----------------------------------------------------------------------
# no-print
# ----------------------------------------------------------------------
@register_rule
class NoPrintRule(Rule):
    """No ``print`` in library code (reporting goes through returns/CLI)."""

    id = "no-print"
    summary = "no print() outside the CLI and report-rendering modules"
    rationale = (
        "Experiment reports are return values (to_text()) so they can be "
        "captured, diffed against the paper's figures, and written by "
        "the CLI; stray prints fragment that contract."
    )
    allowlist = frozenset({"repro.cli", "repro.experiments.reporting"})

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "print() in library code; return report text or raise "
                    "a repro.errors type instead",
                )


# ----------------------------------------------------------------------
# dunder-all
# ----------------------------------------------------------------------
@register_rule
class DunderAllRule(Rule):
    """``__all__`` entries must name objects actually bound in the module."""

    id = "dunder-all"
    summary = "__all__ must list only names defined/imported in the module"
    rationale = (
        "The package __init__ files re-export the public API; an "
        "__all__ entry that drifted from a rename breaks "
        "'from repro.x import *' and hides the symbol from docs."
    )

    @staticmethod
    def _bound_names(tree: ast.Module) -> tuple[set[str], bool]:
        bound: set[str] = set()
        has_star = False
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
            elif isinstance(node, ast.ClassDef):
                bound.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            bound.add(name_node.id)
            elif isinstance(node, (ast.If, ast.Try)):
                for sub in ast.walk(node):
                    if isinstance(
                        sub, (ast.FunctionDef, ast.ClassDef)
                    ):
                        bound.add(sub.name)
                    elif isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Store
                    ):
                        bound.add(sub.id)
        return bound, has_star

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        dunder_all: ast.Assign | None = None
        exported: list[tuple[str, ast.AST]] = []
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                dunder_all = node
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exported.append((element.value, element))
                else:
                    yield self.violation(
                        ctx,
                        node,
                        "__all__ must be a literal list/tuple of strings "
                        "so it can be statically checked",
                    )
                    return
        if dunder_all is None:
            return
        bound, has_star = self._bound_names(ctx.tree)
        if not has_star:
            for name, element in exported:
                if name not in bound:
                    yield self.violation(
                        ctx,
                        element,
                        f"__all__ exports {name!r} but the module never "
                        "defines or imports it",
                    )
        exported_names = {name for name, _ in exported}
        for node in ctx.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if (
                    not node.name.startswith("_")
                    and node.name not in exported_names
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"public {node.name!r} is defined here but missing "
                        "from __all__",
                    )


# ----------------------------------------------------------------------
# wallclock
# ----------------------------------------------------------------------
@register_rule
class WallclockRule(Rule):
    """No direct ``time.time()`` -- benchmarked paths use StageTimer."""

    id = "wallclock"
    summary = "use repro.utils.timer (perf_counter), never time.time()"
    rationale = (
        "The §4.3 runtime-decomposition claim ('>90% of time in DM "
        "construction') is verified with monotonic perf_counter stage "
        "timing; time.time() is wall-clock, jumps with NTP, and would "
        "corrupt the scalability figures."
    )
    allowlist = frozenset()

    _BANNED = frozenset({"time.time", "time.clock"})

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        # Track 'from time import time [as x]' aliases.
        aliased: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "clock"):
                        aliased.add(alias.asname or alias.name)
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in self._BANNED or name in aliased:
                yield self.violation(
                    ctx,
                    node,
                    f"{name}() is non-monotonic wall clock; time stages "
                    "with repro.utils.timer.StageTimer "
                    "(time.perf_counter)",
                )
