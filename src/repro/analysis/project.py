"""Whole-program model for the deep (``--deep``) analysis pass.

The per-file rules of :mod:`repro.analysis.checks` see one
:class:`~repro.analysis.registry.FileContext` at a time, which is blind
to exactly the bugs that cross module boundaries: a worker function
submitted to a thread pool in ``repro.core.batch`` writing registry
state defined in ``repro.obs.trace``, or a public solver entry passing
its caller's array into a helper that mutates it.  This module builds
the shared substrate those analyses need:

* :class:`ModuleInfo` -- one parsed module: import table, module-level
  bindings, mutable module state, suppressions.
* :class:`FunctionInfo` -- every function, method *and nested function*
  under a stable dotted qualname (``repro.core.batch.BatchAligner.fit``,
  ``...._compute_scaled_values._scale_chunk``).
* :class:`ClassInfo` -- classes with their method tables and resolvable
  bases, for ``self.method()`` / ``Cls().method()`` call resolution.
* :class:`ProjectContext` -- the whole project plus a best-effort name
  resolver used by the call graph (:mod:`repro.analysis.callgraph`) and
  the dataflow facts (:mod:`repro.analysis.dataflow`).

Resolution is deliberately *syntactic and conservative*: a name that
cannot be traced to a project definition resolves to its dotted text
(so external calls keep a useful identity) or ``None``.  Unresolvable
is never treated as dangerous on its own -- deep rules only fire on
positively identified facts, keeping the pass quiet enough to gate CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.suppressions import Suppressions, collect_suppressions

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectContext",
]

#: Module-level value expressions treated as mutable containers.
_MUTABLE_LITERALS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.DictComp,
    ast.ListComp,
    ast.SetComp,
)

#: Constructor names whose results are immutable (not shared *mutable*
#: state even when bound at module level).
_IMMUTABLE_CALLS = frozenset(
    {"frozenset", "tuple", "count", "compile", "TypeVar", "namedtuple"}
)


@dataclass
class FunctionInfo:
    """One function, method or nested function in the project."""

    qualname: str
    module_name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    parent_qualname: str | None = None
    #: Positional/keyword parameter names, in signature order
    #: (``self``/``cls`` excluded for methods).
    params: list[str] = field(default_factory=list)
    is_public: bool = True
    #: Qualnames of functions nested directly inside this one.
    nested: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def lineno(self) -> int:
        return int(self.node.lineno)


@dataclass
class ClassInfo:
    """One class definition with its method table and raw base names."""

    qualname: str
    module_name: str
    node: ast.ClassDef
    #: Method name -> FunctionInfo qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: Base-class expressions as dotted text (unresolved).
    bases: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """One parsed module and its name-binding environment."""

    path: str
    name: str
    tree: ast.Module
    source: str
    suppressions: Suppressions
    #: Local alias -> dotted import target ("np" -> "numpy",
    #: "_span" -> "repro.obs.trace.span").
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level name -> qualname of the function/class it binds.
    bindings: dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to mutable containers or instances,
    #: mapped to the line of their binding.  These are the shared-state
    #: candidates the concurrency rules care about.
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: Module-level names bound to ``ContextVar(...)`` instances.  Kept
    #: out of ``mutable_globals`` because ContextVars have their own
    #: thread-affinity rule rather than the generic shared-state one.
    contextvars: set[str] = field(default_factory=set)


def _dotted(node: ast.AST) -> str | None:
    """Dotted text of a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_direct_defs(
    body: list[ast.stmt],
) -> "list[ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef]":
    """Function/class definitions belonging to this scope, at any
    statement depth (inside ``if``/``with``/``try`` blocks too), without
    descending into the found definitions themselves."""
    found: list[ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef] = []
    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            found.append(stmt)
            continue
        for field_name in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field_name, None)
            if value:
                found.extend(_iter_direct_defs(list(value)))
        for handler in getattr(stmt, "handlers", ()):
            found.extend(_iter_direct_defs(list(handler.body)))
    return found


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    """Alias table from every import statement (any nesting level)."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in src/repro
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


def _is_mutable_binding(value: ast.expr, imports: dict[str, str]) -> bool:
    """Whether a module-level assignment binds shared *mutable* state."""
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name is None:
            return True
        tail = name.split(".")[-1]
        if tail in _IMMUTABLE_CALLS:
            return False
        target = imports.get(name.split(".")[0], "")
        # itertools.count() et al. are iterators, mutated by design and
        # safe under the GIL one next() at a time; ContextVars get their
        # own dedicated rule, not the generic shared-state one.
        if tail == "ContextVar" or target == "itertools":
            return False
        return True
    return False


class ProjectContext:
    """Every parsed module of one analysis run, plus name resolution.

    Built once per ``--deep`` invocation by :meth:`build`; the call
    graph, dataflow pass and project rules all share one instance.
    ``stats`` is a scratch mapping project rules publish run-level
    numbers into (the instrumentation-coverage percentage), which the
    reporters surface alongside the violation list.
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.stats: dict[str, object] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls, parsed: list[tuple[str, str, ast.Module, str]]
    ) -> "ProjectContext":
        """Build from ``(path, module_name, tree, source)`` tuples."""
        project = cls()
        for path, module_name, tree, source in parsed:
            info = ModuleInfo(
                path=path,
                name=module_name,
                tree=tree,
                source=source,
                suppressions=collect_suppressions(source),
                imports=_collect_imports(tree),
            )
            project.modules[module_name] = info
            project._index_module(info)
        return project

    def _index_module(self, module: ModuleInfo) -> None:
        for definition in _iter_direct_defs(list(module.tree.body)):
            if isinstance(
                definition, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._index_function(module, definition, None, None)
            else:
                self._index_class(module, definition)
        for node in module.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if value is not None and _is_mutable_binding(
                        value, module.imports
                    ):
                        module.mutable_globals[target.id] = int(node.lineno)
                    if (
                        isinstance(value, ast.Call)
                        and (name := _dotted(value.func)) is not None
                        and name.split(".")[-1] == "ContextVar"
                    ):
                        module.contextvars.add(target.id)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module_name=module.name,
            node=node,
            bases=[
                base
                for base in (_dotted(b) for b in node.bases)
                if base is not None
            ],
        )
        self.classes[qualname] = info
        module.bindings[node.name] = qualname
        for item in _iter_direct_defs(list(node.body)):
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(module, item, node.name, None)
                info.methods[item.name] = fn.qualname

    def _index_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        parent: FunctionInfo | None,
    ) -> FunctionInfo:
        if parent is not None:
            qualname = f"{parent.qualname}.{node.name}"
        elif class_name is not None:
            qualname = f"{module.name}.{class_name}.{node.name}"
        else:
            qualname = f"{module.name}.{node.name}"
        params = [
            arg.arg
            for arg in (
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            )
            if arg.arg not in ("self", "cls")
        ]
        info = FunctionInfo(
            qualname=qualname,
            module_name=module.name,
            path=module.path,
            node=node,
            class_name=class_name,
            parent_qualname=parent.qualname if parent else None,
            params=params,
            is_public=not node.name.startswith("_"),
        )
        self.functions[qualname] = info
        if parent is None and class_name is None:
            module.bindings[node.name] = qualname
        if parent is not None:
            parent.nested.append(qualname)
        for item in _iter_direct_defs(list(node.body)):
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, item, class_name, info)
        return info

    # -- resolution -----------------------------------------------------
    def module_of(self, fn: FunctionInfo) -> ModuleInfo:
        return self.modules[fn.module_name]

    def resolve_class(
        self, module: ModuleInfo, dotted: str
    ) -> ClassInfo | None:
        """Class named by ``dotted`` as seen from ``module`` (else None)."""
        if dotted in self.classes:
            return self.classes[dotted]
        local = module.bindings.get(dotted)
        if local in self.classes:
            return self.classes[local]
        imported = module.imports.get(dotted.split(".")[0])
        if imported is not None:
            tail = dotted.split(".")[1:]
            candidate = ".".join([imported, *tail])
            if candidate in self.classes:
                return self.classes[candidate]
        return None

    def resolve_method(
        self, cls_info: ClassInfo, method: str
    ) -> str | None:
        """Qualname of ``method`` on ``cls_info`` or its project bases."""
        seen: set[str] = set()
        queue = [cls_info]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            module = self.modules.get(current.module_name)
            if module is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def resolve_name(
        self, fn: FunctionInfo, name: str
    ) -> str | None:
        """Qualname/dotted target of a bare ``name`` as seen from ``fn``.

        Lookup order mirrors Python scoping: enclosing functions'
        nested defs, then module-level bindings, then imports; a hit in
        the project wins, an import of something external resolves to
        its dotted text.
        """
        current: FunctionInfo | None = fn
        while current is not None:
            for nested_qualname in current.nested:
                if nested_qualname.rsplit(".", 1)[-1] == name:
                    return nested_qualname
            current = (
                self.functions.get(current.parent_qualname)
                if current.parent_qualname
                else None
            )
        module = self.module_of(fn)
        if name in module.bindings:
            return module.bindings[name]
        if name in module.imports:
            return module.imports[name]
        return None

    def resolve_call(
        self, fn: FunctionInfo, call: ast.Call
    ) -> str | None:
        """Best-effort target qualname of one call site inside ``fn``.

        Handles bare names (scope chain), dotted imports
        (``mod.func``), ``self.method()`` / ``cls.method()`` with
        project-base inheritance, constructor-then-method chains
        (``Cls(...).method(...)``) and method calls on locals assigned
        from a project-class constructor.  Returns the dotted text for
        identifiable external targets, ``None`` when nothing can be
        said.
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(fn, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        # self.method() / cls.method()
        base = func.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            if fn.class_name is not None:
                cls_qual = f"{fn.module_name}.{fn.class_name}"
                cls_info = self.classes.get(cls_qual)
                if cls_info is not None:
                    resolved = self.resolve_method(cls_info, func.attr)
                    if resolved is not None:
                        return resolved
            return None
        # Cls(...).method(...)
        if isinstance(base, ast.Call):
            ctor = _dotted(base.func)
            if ctor is not None:
                cls_info = self.resolve_class(self.module_of(fn), ctor)
                if cls_info is not None:
                    return self.resolve_method(cls_info, func.attr)
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        # var.method() where var was assigned from a project constructor
        var_cls = self._local_instance_class(fn, head)
        if var_cls is not None and "." not in rest:
            return self.resolve_method(var_cls, func.attr)
        module = self.module_of(fn)
        # module-alias attribute: np.zeros, solver.simplex_lstsq
        target = module.imports.get(head)
        if target is not None:
            candidate = f"{target}.{rest}" if rest else target
            if candidate in self.functions:
                return candidate
            # from repro.core import solver; solver.fit -> function
            parts = candidate.rsplit(".", 1)
            if len(parts) == 2 and parts[0] in self.modules:
                bound = self.modules[parts[0]].bindings.get(parts[1])
                if bound is not None:
                    return bound
            return candidate
        if dotted in self.functions:
            return dotted
        return None

    def _local_instance_class(
        self, fn: FunctionInfo, var: str
    ) -> ClassInfo | None:
        """Class of a local assigned ``var = Cls(...)``, or an annotated
        parameter ``var: Cls`` -- the two idioms the experiments use."""
        module = self.module_of(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = _dotted(node.value.func)
                if ctor is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == var:
                        return self.resolve_class(module, ctor)
        for arg in (
            *fn.node.args.posonlyargs,
            *fn.node.args.args,
            *fn.node.args.kwonlyargs,
        ):
            if arg.arg == var and arg.annotation is not None:
                annotation = _dotted(arg.annotation)
                if annotation is not None:
                    return self.resolve_class(module, annotation)
        return None

    def __repr__(self) -> str:
        return (
            f"ProjectContext(modules={len(self.modules)}, "
            f"functions={len(self.functions)}, classes={len(self.classes)})"
        )
