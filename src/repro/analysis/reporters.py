"""Render ``repro-lint`` violations as text or JSON.

Reporters are pure string producers; printing is the CLI's job (the
``no-print`` rule applies to this package too).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.violations import Violation


def render_text(violations: Sequence[Violation]) -> str:
    """GCC-style ``path:line:col: [rule] message`` lines plus a summary."""
    lines = [violation.format() for violation in violations]
    count = len(violations)
    if count == 0:
        lines.append("repro-lint: clean (0 violations)")
    else:
        plural = "s" if count != 1 else ""
        lines.append(f"repro-lint: {count} violation{plural}")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report: ``{"violations": [...], "count": n}``."""
    payload = {
        "violations": [violation.to_dict() for violation in violations],
        "count": len(violations),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(violations: Sequence[Violation], fmt: str = "text") -> str:
    """Dispatch on ``fmt`` (``"text"`` or ``"json"``)."""
    if fmt == "json":
        return render_json(violations)
    return render_text(violations)
