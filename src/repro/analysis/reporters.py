"""Render ``repro-lint`` violations as text, JSON or SARIF.

Reporters are pure string producers; printing is the CLI's job (the
``no-print`` rule applies to this package too).

The SARIF reporter emits `SARIF 2.1.0
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_ so
CI can upload the report for code-scanning annotation.  Severity maps
directly onto SARIF levels (``error``/``warning``/``note``).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence

from repro.analysis.violations import Violation

#: SARIF schema constants for the version we emit.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(
    violations: Sequence[Violation],
    stats: Mapping[str, object] | None = None,
) -> str:
    """GCC-style ``path:line:col: [rule] message`` lines plus a summary."""
    lines = [violation.format() for violation in violations]
    count = len(violations)
    if count == 0:
        lines.append("repro-lint: clean (0 violations)")
    else:
        plural = "s" if count != 1 else ""
        lines.append(f"repro-lint: {count} violation{plural}")
    if stats:
        coverage = stats.get("instrumentation_coverage")
        if isinstance(coverage, Mapping):
            lines.append(
                "repro-lint: instrumentation coverage "
                f"{coverage.get('instrumented', 0)}/"
                f"{coverage.get('hot_path_functions', 0)} hot-path "
                f"functions ({coverage.get('coverage_pct', 0.0)}%)"
            )
        lines.append(
            "repro-lint: analyzed "
            f"{stats.get('files', 0)} files, "
            f"{stats.get('functions', 0)} functions, "
            f"{stats.get('thread_fanout_sites', 0)} thread / "
            f"{stats.get('process_fanout_sites', 0)} process fan-out sites"
        )
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    stats: Mapping[str, object] | None = None,
) -> str:
    """Machine-readable report: ``{"violations": [...], "count": n}``."""
    payload: dict[str, object] = {
        "violations": [violation.to_dict() for violation in violations],
        "count": len(violations),
    }
    if stats is not None:
        payload["stats"] = dict(stats)
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_metadata() -> list[dict[str, object]]:
    """SARIF ``tool.driver.rules`` entries for every registered rule."""
    # Imported lazily: reporters must stay importable without dragging
    # the rule modules (and their transitive imports) into every caller.
    from repro.analysis.registry import all_project_rules, all_rules

    entries: list[dict[str, object]] = []
    merged: dict[str, tuple[str, str]] = {}
    for rule_id, rule_cls in {**all_rules(), **all_project_rules()}.items():
        merged[rule_id] = (rule_cls.summary, rule_cls.rationale)
    for rule_id in sorted(merged):
        summary, rationale = merged[rule_id]
        entries.append(
            {
                "id": rule_id,
                "shortDescription": {"text": summary},
                "fullDescription": {"text": rationale},
            }
        )
    return entries


def render_sarif(
    violations: Sequence[Violation],
    stats: Mapping[str, object] | None = None,
) -> str:
    """SARIF 2.1.0 report with one run and one result per violation."""
    results = []
    for violation in violations:
        results.append(
            {
                "ruleId": violation.rule_id,
                "level": violation.severity
                if violation.severity in ("error", "warning", "note")
                else "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": violation.line,
                                # SARIF columns are 1-based; Violation
                                # records the AST's 0-based offset.
                                "startColumn": violation.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    run: dict[str, object] = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri": (
                    "https://github.com/geoalign/repro"
                ),
                "rules": _rule_metadata(),
            }
        },
        "results": results,
    }
    if stats is not None:
        run["properties"] = {"stats": dict(stats)}
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(
    violations: Sequence[Violation],
    fmt: str = "text",
    stats: Mapping[str, object] | None = None,
) -> str:
    """Dispatch on ``fmt`` (``"text"``, ``"json"`` or ``"sarif"``)."""
    if fmt == "json":
        return render_json(violations, stats)
    if fmt == "sarif":
        return render_sarif(violations, stats)
    return render_text(violations, stats)
