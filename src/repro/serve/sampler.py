"""Tail-sampled request exemplars: keep the traces worth keeping.

Always-on JSONL tracing of every request is too expensive for a hot
``/predict`` path, and head sampling (keep 1-in-N) reliably misses the
requests an operator actually investigates: the errors and the slow
tail.  So the server traces *every* request into a cheap per-request
session and decides **after** the response whether to retain it:

* error responses (status >= 400) are always retained;
* a request slower than the current p99 estimate of its endpoint's
  latency histogram (read *before* the request is folded in, so it is
  judged against the traffic that preceded it) is retained as a tail
  exemplar;
* everything else is dropped on the spot -- the session dies with the
  request and no JSONL is written.

Retained exemplars carry the full span tree in the JSONL record format
of :mod:`repro.obs.export`, bounded by a ring buffer, and are exposed
at ``/debug/exemplars`` and via ``geoalign-repro obs tail``.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.obs.export import trace_to_records
from repro.obs.trace import Trace

__all__ = ["Exemplar", "TailSampler"]


@dataclass(frozen=True)
class Exemplar:
    """One retained request trace, ready for JSON exposure."""

    exemplar_id: int
    endpoint: str
    method: str
    status: int
    seconds: float
    reason: str
    p99_seconds: float | None
    records: tuple[dict[str, object], ...]

    def to_json(self) -> dict[str, object]:
        return {
            "id": self.exemplar_id,
            "endpoint": self.endpoint,
            "method": self.method,
            "status": self.status,
            "seconds": self.seconds,
            "reason": self.reason,
            "p99_seconds": self.p99_seconds,
            "records": list(self.records),
        }


class TailSampler:
    """Bounded ring of error/slow-tail request exemplars.

    Lock-guarded for the same reason :class:`ServerMetrics` is: the
    ring is written from the serving loop and read from other threads
    (tests, the CLI polling ``/debug/exemplars``).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValidationError(
                f"exemplar capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[Exemplar] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self.sampled_total = 0
        self.retained_errors = 0
        self.retained_slow = 0

    def retain_reason(
        self, status: int, seconds: float, p99: float | None
    ) -> str | None:
        """Why this request should be kept, or ``None`` to drop it."""
        if status >= 400:
            return "error"
        if p99 is not None and seconds >= p99:
            return "slow"
        return None

    def observe(
        self,
        session: Trace,
        *,
        endpoint: str,
        method: str,
        status: int,
        seconds: float,
        p99: float | None,
    ) -> str | None:
        """Judge one finished request; retain its trace if it matters.

        Returns the retention reason, or ``None`` when the trace was
        dropped.  ``trace_to_records`` (the expensive part) runs only
        for retained requests.
        """
        reason = self.retain_reason(status, seconds, p99)
        with self._lock:
            self.sampled_total += 1
            if reason is None:
                return None
            if reason == "error":
                self.retained_errors += 1
            else:
                self.retained_slow += 1
            exemplar = Exemplar(
                exemplar_id=next(self._ids),
                endpoint=endpoint,
                method=method,
                status=status,
                seconds=seconds,
                reason=reason,
                p99_seconds=p99,
                records=tuple(trace_to_records(session)),
            )
            self._ring.append(exemplar)
            return reason

    def exemplars(self) -> list[Exemplar]:
        """Retained exemplars, newest first."""
        with self._lock:
            return list(reversed(self._ring))

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "sampled_total": float(self.sampled_total),
                "retained": float(len(self._ring)),
                "retained_errors": float(self.retained_errors),
                "retained_slow": float(self.retained_slow),
                "capacity": float(self.capacity),
            }
