"""A small keep-alive JSON client for the alignment server.

:class:`ServeClient` holds one open connection and issues sequential
requests over it, which is exactly what the concurrency suite and the
load harness need: N clients * 1 connection each, every client an
independent asyncio task, all multiplexed on one loop.  It is also the
transport behind the ``geoalign-repro serve --self-test`` smoke path.

The parser is the mirror of :mod:`repro.serve.http`: status line +
headers + ``Content-Length`` body.  Anything that does not frame
raises :class:`~repro.errors.ServeError`; HTTP-level failures do *not*
raise -- :meth:`request` returns ``(status, payload)`` and callers
inspect the documented error envelope, so tests can assert on exact
codes without exception gymnastics.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ServeError

__all__ = ["ServeClient"]

#: Bound on response header block size, mirroring the server's limit.
_RESPONSE_HEADER_LIMIT = 16 * 1024


class ServeClient:
    """One keep-alive connection to an :class:`AlignmentServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._closing = False

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload: dict[str, object] | None = None,
    ) -> tuple[int, dict[str, object]]:
        """Send one request; returns ``(status, parsed JSON body)``.

        Reconnects transparently if the server closed the kept-alive
        connection (e.g. after a ``Connection: close`` response).
        """
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
        )
        if body or method in ("POST", "PUT"):
            head += f"Content-Length: {len(body)}\r\n"
        head += "\r\n"
        self._writer.write(head.encode() + body)
        await self._writer.drain()
        try:
            return await self._read_response()
        finally:
            # A response that came back Connection: close leaves the
            # transport dead; drop it so the next request reconnects.
            if self._closing:
                await self.close()

    async def _read_response(self) -> tuple[int, dict[str, object]]:
        assert self._reader is not None
        lines: list[bytes] = []
        total = 0
        while True:
            line = await self._reader.readline()
            if not line:
                raise ServeError(
                    "server closed the connection before responding",
                    code="bad-response",
                    status=0,
                )
            total += len(line)
            if total > _RESPONSE_HEADER_LIMIT:
                raise ServeError(
                    "response header block exceeds the client limit",
                    code="bad-response",
                    status=0,
                )
            if line in (b"\r\n", b"\n"):
                break
            lines.append(line)
        status_line = lines[0].decode("latin-1").strip() if lines else ""
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ServeError(
                f"malformed status line {status_line!r}",
                code="bad-response",
                status=0,
            )
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise ServeError(
                f"malformed status {parts[1]!r}",
                code="bad-response",
                status=0,
            ) from exc
        headers: dict[str, str] = {}
        for raw_line in lines[1:]:
            name, sep, value = raw_line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        self._closing = headers.get("connection", "").lower() == "close"
        length_header = headers.get("content-length")
        if length_header is None:
            raise ServeError(
                "response carries no Content-Length",
                code="bad-response",
                status=0,
            )
        try:
            length = int(length_header)
        except ValueError as exc:
            raise ServeError(
                f"invalid response Content-Length {length_header!r}",
                code="bad-response",
                status=0,
            ) from exc
        try:
            body = await self._reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise ServeError(
                f"connection closed mid-response: {exc}",
                code="bad-response",
                status=0,
            ) from exc
        try:
            parsed = json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"response body is not JSON: {exc}",
                code="bad-response",
                status=0,
            ) from exc
        if not isinstance(parsed, dict):
            raise ServeError(
                "response body must be a JSON object",
                code="bad-response",
                status=0,
            )
        return status, parsed

    def __repr__(self) -> str:
        state = "open" if self._writer is not None else "closed"
        return f"ServeClient({self.host}:{self.port}, {state})"
