"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The serving layer speaks just enough HTTP for JSON request/response
traffic with keep-alive: request line + headers + ``Content-Length``
body in, status line + JSON body out.  No chunked transfer, no
multipart, no TLS -- the server sits behind whatever terminates those
in production, and the paper-repro goal is a dependency-free stack.

Framing errors are :class:`~repro.errors.ServeError` values carrying
the stable envelope code and HTTP status, so the connection loop turns
any malformed input into the documented JSON error envelope::

    {"error": {"code": "payload-too-large", "message": "..."}}

Limits are explicit: header block and body sizes are bounded
(``REQUEST_HEADER_LIMIT``, server-configured ``max_body_bytes``), and
a request that advertises a larger body is refused *before* the body
is read, so an oversized payload cannot balloon server memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.errors import ServeError

__all__ = [
    "HttpRequest",
    "REQUEST_HEADER_LIMIT",
    "STATUS_PHRASES",
    "encode_response",
    "read_request",
]

#: Maximum bytes of request line + headers (a defensive bound; real
#: clients send a few hundred bytes).
REQUEST_HEADER_LIMIT = 16 * 1024

#: Reason phrases for the statuses the server emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request: method, path, lowered headers, raw body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless ``Connection: close``."""
        return self.headers.get("connection", "").lower() != "close"

    def json_body(self) -> dict[str, object]:
        """The body parsed as a JSON object, or a ``bad-request`` error."""
        if not self.body:
            raise ServeError(
                "request body must be a JSON object; it was empty",
                code="bad-request",
                status=400,
            )
        try:
            parsed = json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"request body is not valid JSON: {exc}",
                code="bad-request",
                status=400,
            ) from exc
        if not isinstance(parsed, dict):
            raise ServeError(
                "request body must be a JSON object, got "
                f"{type(parsed).__name__}",
                code="bad-request",
                status=400,
            )
        return parsed


async def _read_header_block(reader: asyncio.StreamReader) -> bytes | None:
    """Bytes up to the blank line, ``None`` on clean EOF before any byte."""
    block = bytearray()
    while True:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError) as exc:
            raise ServeError(
                f"connection failed mid-headers: {exc}",
                code="bad-request",
                status=400,
            ) from exc
        if not line:
            if not block:
                return None
            raise ServeError(
                "connection closed mid-headers",
                code="bad-request",
                status=400,
            )
        block += line
        if len(block) > REQUEST_HEADER_LIMIT:
            raise ServeError(
                f"request headers exceed {REQUEST_HEADER_LIMIT} bytes",
                code="payload-too-large",
                status=413,
            )
        if line in (b"\r\n", b"\n"):
            return bytes(block)


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    The body is only read after its advertised length passes the
    ``max_body_bytes`` bound, so oversized uploads are refused without
    buffering them.
    """
    block = await _read_header_block(reader)
    if block is None:
        return None
    lines = block.decode("latin-1").splitlines()
    request_line = lines[0].strip() if lines else ""
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].upper().startswith("HTTP/1."):
        raise ServeError(
            f"malformed request line {request_line!r}",
            code="bad-request",
            status=400,
        )
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for raw in lines[1:]:
        if not raw.strip():
            continue
        name, sep, value = raw.partition(":")
        if not sep:
            raise ServeError(
                f"malformed header line {raw!r}",
                code="bad-request",
                status=400,
            )
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise ServeError(
                f"invalid Content-Length {length_header!r}",
                code="bad-request",
                status=400,
            ) from exc
        if length < 0:
            raise ServeError(
                f"invalid Content-Length {length}",
                code="bad-request",
                status=400,
            )
        if length > max_body_bytes:
            raise ServeError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
                code="payload-too-large",
                status=413,
            )
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise ServeError(
                f"connection closed mid-body: {exc}",
                code="bad-request",
                status=400,
            ) from exc
    elif method in ("POST", "PUT"):
        raise ServeError(
            f"{method} requests must carry Content-Length",
            code="bad-request",
            status=411,
        )
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def encode_response(
    status: int,
    payload: "dict[str, object] | str",
    keep_alive: bool,
    content_type: str | None = None,
) -> bytes:
    """Serialize one response, ready for ``writer.write``.

    A dict payload is JSON-encoded (``json.dumps`` uses
    shortest-roundtrip float repr, so numerical results survive the
    wire bit-exactly -- the concurrency suite pins served predictions
    ``==`` offline ones, not merely close).  A string payload is sent
    verbatim under ``content_type`` -- the Prometheus text exposition
    path of ``/metrics``.
    """
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        media = content_type or "text/plain; charset=utf-8"
    else:
        body = json.dumps(payload).encode()
        media = content_type or "application/json"
    phrase = STATUS_PHRASES.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {media}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode() + body
