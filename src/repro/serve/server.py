"""The alignment server: warm fitted models behind an asyncio loop.

One :class:`AlignmentServer` holds a registry of fitted
:class:`~repro.core.batch.BatchAligner` models (loaded from a
:class:`~repro.store.ModelStore` or registered in-process) with their
target predictions precomputed, and answers JSON queries over HTTP:

========== ======= ====================================================
endpoint   method  answers
========== ======= ====================================================
/predict   POST    target-level estimates for chosen attributes
/align     POST    fit new objectives against a warm reference stack
/disagg... POST    one attribute's estimated DM as COO triplets
/healthz   GET     liveness + per-model health snapshot (503 draining)
/metrics   GET     counters/gauges/latency histograms -- JSON by
                   default, Prometheus 0.0.4 text when the Accept
                   header asks for text/plain or openmetrics
/debug/... GET     tail-sampled request exemplars (full span trees for
                   error responses and the slowest p99 tail)
========== ======= ====================================================

Design choices that make the hot path hot:

* ``/predict`` never touches the solver: predictions are materialised
  once at registration, so a request is a dict lookup, row slicing,
  and one ``json.dumps`` -- thousands of requests per second from one
  loop thread (the load harness gates this).
* Models are immutable after registration and handlers never mutate
  shared state outside the lock-guarded metrics, so overlapping
  requests are answered bit-identically to the offline engine.
* ``/align`` reuses the loaded :class:`ReferenceStack` wholesale --
  the design/Gram build and union-pattern construction are skipped,
  leaving N small solves and two matmuls.  It runs inline on the loop
  (alignment latency is milliseconds at serving scale); the fitted
  result joins the registry and can be persisted back to the store.

Observability: the tracing state active at :meth:`start` is captured
(:func:`~repro.obs.trace.current_trace_context`) and re-activated per
request task, so each request records its own ``serve.request`` span
parented to the server's root -- concurrent requests never nest under
one another (the concurrency suite asserts exactly this).  On top of
that, every request runs under its own throwaway session feeding the
:class:`~repro.serve.sampler.TailSampler`, which retains full span
trees only for error responses and the slowest p99 tail.

Shutdown drains: :meth:`shutdown` stops accepting, lets in-flight
requests finish (bounded by ``drain_grace``), answers anything newly
arriving on kept-alive connections with the ``server-draining``
envelope, then closes the transports.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.core.batch import BatchAligner
from repro.errors import ReproError, ServeError, StoreError
from repro.obs.promfmt import (
    PROMETHEUS_CONTENT_TYPE,
    MetricFamily,
    render_prometheus_text,
)
from repro.obs.trace import (
    Trace,
    TraceContext,
    current_trace_context as _trace_context,
    event as _obs_event,
    incr as _obs_incr,
    set_gauge_max as _gauge_max,
    span as _span,
)
from repro.serve.http import HttpRequest, encode_response, read_request
from repro.serve.metrics import ServerMetrics
from repro.serve.sampler import TailSampler
from repro.store.store import KEY_LENGTH, ModelStore, model_fingerprint

__all__ = ["AlignmentServer", "ServingModel"]

FloatArray = NDArray[np.float64]

#: Endpoints answered with a JSON body on POST.
_POST_ENDPOINTS = ("/predict", "/align", "/disaggregate")

#: Endpoints answered on GET.
_GET_ENDPOINTS = ("/healthz", "/metrics", "/debug/exemplars")

#: Health-verdict encoding for the ``geoalign_health_status`` gauge
#: family (0 = healthy, higher = worse; unknown verdicts read as warn).
_HEALTH_VALUES = {"ok": 0.0, "info": 0.0, "warn": 1.0, "fail": 2.0}


@dataclass(frozen=True)
class _TextBody:
    """A non-JSON response body (the Prometheus exposition path)."""

    text: str
    content_type: str


@dataclass
class ServingModel:
    """One registry slot: a fitted aligner plus precomputed answers."""

    key: str
    fingerprint: str
    model: BatchAligner
    predictions: FloatArray
    attribute_index: dict[str, int] = field(default_factory=dict)
    health: dict[str, str] = field(default_factory=dict)

    @property
    def attribute_names(self) -> list[str]:
        return list(self.model.attribute_names_ or [])

    @classmethod
    def from_model(
        cls,
        model: BatchAligner,
        key: str | None = None,
        health: dict[str, str] | None = None,
    ) -> "ServingModel":
        fingerprint = model_fingerprint(model)
        predictions = model.predict()
        names = list(model.attribute_names_ or [])
        return cls(
            key=key if key is not None else fingerprint[:KEY_LENGTH],
            fingerprint=fingerprint,
            model=model,
            predictions=predictions,
            attribute_index={name: i for i, name in enumerate(names)},
            health=dict(health or {}),
        )


def _error_envelope(code: str, message: str) -> dict[str, object]:
    """The documented error body shape (see docs/serving.md)."""
    return {"error": {"code": code, "message": message}}


class AlignmentServer:
    """Serve align/predict/disaggregate queries from warm models.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ModelStore` backing
        :meth:`load_from_store` and ``/align``'s ``"store": true``.
    host, port:
        Bind address; port 0 picks an ephemeral port (reported by
        :meth:`start`).
    max_body_bytes:
        Request-body bound; larger uploads get the
        ``payload-too-large`` envelope without being buffered.
    drain_grace:
        Seconds :meth:`shutdown` waits for in-flight requests before
        closing their transports anyway.
    """

    def __init__(
        self,
        store: ModelStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 8 * 1024 * 1024,
        drain_grace: float = 5.0,
        exemplar_capacity: int = 32,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.drain_grace = drain_grace
        self.metrics = ServerMetrics()
        self.tail = TailSampler(capacity=exemplar_capacity)
        self._models: dict[str, ServingModel] = {}
        self._server: asyncio.Server | None = None
        self._started_at: float | None = None
        self._draining = False
        self._in_flight = 0
        self._idle: asyncio.Event | None = None
        self._closed: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._obs_ctx: TraceContext | None = None
        #: Test hook: seconds each request parks before dispatch, so the
        #: failure-mode suite can hold a request in flight across a
        #: shutdown call.  Never set outside tests.
        self.request_delay = 0.0

    # -- model registry -------------------------------------------------
    @property
    def models(self) -> dict[str, ServingModel]:
        """The live registry (read-only by convention)."""
        return self._models

    def add_model(
        self,
        model: BatchAligner,
        key: str | None = None,
        health: dict[str, str] | None = None,
    ) -> str:
        """Register one fitted aligner; returns its serving key."""
        serving = ServingModel.from_model(model, key=key, health=health)
        self._models[serving.key] = serving
        return serving.key

    def load_from_store(self, prefix: str) -> str:
        """Warm-load one stored model by key prefix; returns the key."""
        if self.store is None:
            raise StoreError(
                "this server has no model store configured"
            )
        model, entry = self.store.load(prefix)
        serving = ServingModel.from_model(
            model, key=entry.key, health=entry.health
        )
        self._models[serving.key] = serving
        return serving.key

    def load_all_from_store(self) -> list[str]:
        """Warm-load every artifact in the store; returns the keys."""
        if self.store is None:
            raise StoreError(
                "this server has no model store configured"
            )
        return [self.load_from_store(key) for key in self.store.keys()]

    def _resolve_model(self, body: dict[str, object]) -> ServingModel:
        spec = body.get("model")
        if spec is None:
            if len(self._models) == 1:
                return next(iter(self._models.values()))
            raise ServeError(
                f"request must name a model ({len(self._models)} loaded); "
                "pass {'model': <key prefix>}",
                code="bad-request",
                status=400,
            )
        if not isinstance(spec, str) or not spec:
            raise ServeError(
                "model must be a non-empty key-prefix string",
                code="bad-request",
                status=400,
            )
        matches = [
            key for key in self._models if key.startswith(spec)
        ] or [
            key
            for key, serving in self._models.items()
            if serving.fingerprint.startswith(spec)
        ]
        if not matches:
            raise ServeError(
                f"no loaded model matches fingerprint prefix {spec!r}",
                code="unknown-model",
                status=404,
            )
        if len(matches) > 1:
            raise ServeError(
                f"model prefix {spec!r} is ambiguous: {sorted(matches)}",
                code="bad-request",
                status=400,
            )
        return self._models[matches[0]]

    # -- lifecycle ------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)`` bound."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = asyncio.Event()
        self._obs_ctx = _trace_context()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = str(sockname[0]), int(sockname[1])
        self._started_at = time.perf_counter()
        _obs_event("serve.started", host=self.host, port=self.port)
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes (CLI foreground mode)."""
        if self._closed is None:
            raise ServeError("server is not started")
        await self._closed.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight requests, close transports.

        With ``drain=True`` (the default) requests already being
        processed run to completion (bounded by ``drain_grace``); new
        requests arriving on kept-alive connections are answered with
        the ``server-draining`` envelope and a closed connection.
        """
        if self._server is None or self._closed is None:
            raise ServeError("server is not started")
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if drain and self._idle is not None and self._in_flight > 0:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.drain_grace
                )
            except asyncio.TimeoutError:
                _obs_event(
                    "serve.drain_timeout", in_flight=self._in_flight
                )
        for writer in list(self._writers):
            writer.close()
        _obs_event("serve.stopped", requests=self.metrics.counter(
            "requests_total"
        ))
        self._closed.set()

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.max_body_bytes
                    )
                except ServeError as exc:
                    # Framing failed: answer the envelope and drop the
                    # connection (the stream position is unreliable).
                    self.metrics.incr("requests_total")
                    self.metrics.incr("errors_total")
                    self.metrics.incr(f"responses_{exc.status}")
                    writer.write(
                        encode_response(
                            exc.status,
                            _error_envelope(exc.code, str(exc)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = await self._handle_request(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle_request(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Process one framed request; returns keep-alive.

        Every accepted request runs under a throwaway per-request
        :class:`~repro.obs.trace.Trace` session *in addition to* any
        sessions captured at :meth:`start` -- the per-request session
        feeds the tail sampler, which retains the full span tree only
        for error responses and the slow p99 tail, so tracing every
        request costs one small object, not unbounded JSONL.
        """
        started = time.perf_counter()
        # Draining is decided at accept time: a request framed before
        # shutdown began runs to completion; one arriving after gets
        # the envelope even if an earlier in-flight request is slow.
        accepted = not self._draining
        self._in_flight += 1
        if self._idle is not None:
            self._idle.clear()
        obs_ctx = self._obs_ctx
        base_sessions = obs_ctx.sessions if obs_ctx is not None else ()
        base_parent = obs_ctx.parent_id if obs_ctx is not None else None
        session = Trace(f"request {request.method} {request.path}")
        request_ctx = TraceContext(
            sessions=base_sessions + (session,), parent_id=base_parent
        )
        payload: "dict[str, object] | _TextBody"
        try:
            if self.request_delay > 0.0:
                await asyncio.sleep(self.request_delay)
            if not accepted:
                status, payload = 503, _error_envelope(
                    "server-draining",
                    "the server is draining and no longer "
                    "accepts requests",
                )
            else:
                with request_ctx.activate():
                    with _span(
                        "serve.request",
                        method=request.method,
                        endpoint=request.path,
                    ) as record:
                        status, payload = self._dispatch(request)
                        if record is not None:
                            record.attrs["status"] = status
                    _obs_incr("serve.requests")
                    if status >= 400:
                        _obs_incr("serve.errors")
        finally:
            self._in_flight -= 1
            if self._in_flight == 0 and self._idle is not None:
                self._idle.set()
        elapsed = time.perf_counter() - started
        session.ended = time.perf_counter()
        # The p99 estimate is read *before* this request's latency is
        # folded in, so the tail verdict compares against prior traffic.
        p99 = self.metrics.latency_quantile(request.path, 0.99)
        self.metrics.incr("requests_total")
        self.metrics.incr(f"responses_{status}")
        if status >= 400:
            self.metrics.incr("errors_total")
        self.metrics.observe_latency(request.path, elapsed)
        if accepted:
            self.tail.observe(
                session,
                endpoint=request.path,
                method=request.method,
                status=status,
                seconds=elapsed,
                p99=p99,
            )
        if obs_ctx is not None:
            with obs_ctx.activate():
                _gauge_max("serve.latency_max_seconds", elapsed)
        keep_alive = request.keep_alive and not self._draining
        if isinstance(payload, _TextBody):
            writer.write(
                encode_response(
                    status,
                    payload.text,
                    keep_alive,
                    content_type=payload.content_type,
                )
            )
        else:
            writer.write(encode_response(status, payload, keep_alive))
        await writer.drain()
        return keep_alive

    # -- dispatch -------------------------------------------------------
    def _dispatch(
        self, request: HttpRequest
    ) -> tuple[int, "dict[str, object] | _TextBody"]:
        """Route one request; every failure becomes an envelope."""
        try:
            if request.path == "/healthz":
                self._require_method(request, "GET")
                return 200, self._healthz_payload()
            if request.path == "/metrics":
                self._require_method(request, "GET")
                # Content negotiation: Prometheus scrapers advertise
                # text/plain (or openmetrics); everything else -- the
                # ServeClient harness, the CI smoke curl -- keeps the
                # historical JSON snapshot.
                accept = request.headers.get("accept", "")
                if "text/plain" in accept or "openmetrics" in accept:
                    return 200, _TextBody(
                        self._metrics_prometheus(),
                        PROMETHEUS_CONTENT_TYPE,
                    )
                return 200, self._metrics_payload()
            if request.path == "/debug/exemplars":
                self._require_method(request, "GET")
                return 200, self._exemplars_payload()
            if request.path == "/predict":
                self._require_method(request, "POST")
                return 200, self._predict(request.json_body())
            if request.path == "/align":
                self._require_method(request, "POST")
                return 200, self._align(request.json_body())
            if request.path == "/disaggregate":
                self._require_method(request, "POST")
                return 200, self._disaggregate(request.json_body())
            raise ServeError(
                f"no endpoint at {request.path!r}",
                code="not-found",
                status=404,
            )
        except ServeError as exc:
            return exc.status, _error_envelope(exc.code, str(exc))
        except ReproError as exc:
            # Core validation errors (bad shapes, empty objectives, ...)
            # are client mistakes, not server faults.
            return 400, _error_envelope("invalid-input", str(exc))
        except Exception as exc:  # repro-lint: allow[bare-except] a server must answer 500, never die on one request; the envelope carries the type  # pragma: no cover - defensive
            return 500, _error_envelope(
                "internal", f"{type(exc).__name__}: {exc}"
            )

    @staticmethod
    def _require_method(request: HttpRequest, method: str) -> None:
        if request.method != method:
            raise ServeError(
                f"{request.path} answers {method}, not {request.method}",
                code="method-not-allowed",
                status=405,
            )

    # -- endpoint payloads ----------------------------------------------
    def _healthz_payload(self) -> dict[str, object]:
        return {
            "status": "ok",
            "models": {
                key: {
                    "fingerprint": serving.fingerprint,
                    "n_attrs": len(serving.attribute_names),
                    "health": serving.health or {},
                }
                for key, serving in sorted(self._models.items())
            },
            "in_flight": self._in_flight,
            "requests": self.metrics.counter("requests_total"),
            "errors": self.metrics.counter("errors_total"),
            "uptime_seconds": self.uptime_seconds,
        }

    def _live_gauges(self) -> dict[str, float]:
        """Current server gauges, shared by both /metrics renderings.

        Warm-stack residency: union-pattern size and bytes actually
        held by the CSR/aligned/dense value stacks, summed over every
        loaded model, so operators can see what the sparse layout buys
        (and catch a dense-fallback bisect inflating the fleet).
        """
        stacks = [
            serving.model.stack_.dm_stack
            for serving in self._models.values()
            if serving.model.stack_ is not None
        ]
        return {
            "models": float(len(self._models)),
            "in_flight": float(self._in_flight),
            "uptime_seconds": self.uptime_seconds,
            "stack_nnz": float(sum(stack.nnz for stack in stacks)),
            "stack_resident_bytes": float(
                sum(stack.resident_bytes for stack in stacks)
            ),
            "stack_density": (
                min(stack.density for stack in stacks) if stacks else 1.0
            ),
        }

    def _metrics_payload(self) -> dict[str, object]:
        snapshot = self.metrics.snapshot()
        snapshot["gauges"] = self._live_gauges()
        snapshot["exemplars"] = self.tail.stats()
        return snapshot

    def _metrics_prometheus(self) -> str:
        """The Prometheus 0.0.4 text rendering of ``/metrics``.

        Counters and latency histograms come from
        :meth:`ServerMetrics.prometheus_families`; the live ``stack_*``
        gauges, per-model ``health.*`` verdicts and tail-sampler stats
        are appended here because they are server state, not request
        metrics.
        """
        families = self.metrics.prometheus_families(
            extra_gauges=self._live_gauges()
        )
        health = MetricFamily(
            name="geoalign_health_status",
            kind="gauge",
            help=(
                "Model health verdicts (0 = ok/info, 1 = warn, "
                "2 = fail)."
            ),
        )
        for key, serving in sorted(self._models.items()):
            for check, verdict in sorted(serving.health.items()):
                health.add(
                    _HEALTH_VALUES.get(verdict, 1.0),
                    (("model", key), ("check", check)),
                )
        if health.samples:
            families.append(health)
        sampler_stats = self.tail.stats()
        sampled = MetricFamily(
            name="geoalign_exemplars_sampled_total",
            kind="counter",
            help="Requests judged by the tail sampler.",
        )
        sampled.add(sampler_stats["sampled_total"])
        retained = MetricFamily(
            name="geoalign_exemplars_retained",
            kind="gauge",
            help="Exemplar traces currently held in the ring buffer.",
        )
        retained.add(sampler_stats["retained"])
        families.extend([sampled, retained])
        return render_prometheus_text(families)

    def _exemplars_payload(self) -> dict[str, object]:
        return {
            "exemplars": [
                exemplar.to_json() for exemplar in self.tail.exemplars()
            ],
            "stats": self.tail.stats(),
        }

    def _selected_attributes(
        self, serving: ServingModel, body: dict[str, object]
    ) -> list[str]:
        if "attribute" in body and "attributes" in body:
            raise ServeError(
                "pass either 'attribute' or 'attributes', not both",
                code="bad-request",
                status=400,
            )
        if "attribute" in body:
            names = [body["attribute"]]
        elif "attributes" in body:
            names = body["attributes"]  # type: ignore[assignment]
            if not isinstance(names, list) or not names:
                raise ServeError(
                    "'attributes' must be a non-empty list of names",
                    code="bad-request",
                    status=400,
                )
        else:
            return serving.attribute_names
        resolved: list[str] = []
        for name in names:
            if (
                not isinstance(name, str)
                or name not in serving.attribute_index
            ):
                raise ServeError(
                    f"model {serving.key} has no attribute {name!r} "
                    f"(it serves {serving.attribute_names})",
                    code="unknown-attribute",
                    status=404,
                )
            resolved.append(name)
        return resolved

    def _predict(self, body: dict[str, object]) -> dict[str, object]:
        serving = self._resolve_model(body)
        names = self._selected_attributes(serving, body)
        rows = [
            serving.predictions[serving.attribute_index[name]].tolist()
            for name in names
        ]
        return {
            "model": serving.key,
            "attributes": names,
            "n_targets": int(serving.predictions.shape[1]),
            "predictions": rows,
        }

    def _align(self, body: dict[str, object]) -> dict[str, object]:
        serving = self._resolve_model(body)
        objectives = body.get("objectives")
        if objectives is None:
            raise ServeError(
                "align requests must carry 'objectives'",
                code="bad-request",
                status=400,
            )
        attribute_names = body.get("attribute_names")
        if attribute_names is not None and not isinstance(
            attribute_names, list
        ):
            raise ServeError(
                "'attribute_names' must be a list",
                code="bad-request",
                status=400,
            )
        base = serving.model
        stack = base.stack_
        assert stack is not None
        with _span("serve.align", base=serving.key):
            fitted = BatchAligner(
                solver_method=base.solver_method,
                normalize=base.normalize,
                denominator=base.denominator,
            ).fit(
                stack,
                objectives,  # type: ignore[arg-type]
                attribute_names=attribute_names,  # type: ignore[arg-type]
                masks=body.get("masks"),  # type: ignore[arg-type]
            )
            new_serving = ServingModel.from_model(fitted)
        self._models[new_serving.key] = new_serving
        stored = False
        if bool(body.get("store")):
            if self.store is None:
                raise ServeError(
                    "this server has no model store configured; "
                    "cannot honour 'store': true",
                    code="bad-request",
                    status=400,
                )
            self.store.save(fitted)
            stored = True
        return {
            "model": new_serving.key,
            "fingerprint": new_serving.fingerprint,
            "attributes": new_serving.attribute_names,
            "n_targets": int(new_serving.predictions.shape[1]),
            "predictions": [
                row.tolist() for row in new_serving.predictions
            ],
            "stored": stored,
        }

    def _disaggregate(self, body: dict[str, object]) -> dict[str, object]:
        serving = self._resolve_model(body)
        names = self._selected_attributes(serving, body)
        if len(names) != 1:
            raise ServeError(
                "disaggregate answers one attribute per request; "
                "pass {'attribute': <name>}",
                code="bad-request",
                status=400,
            )
        model = serving.model
        stack = model.stack_
        assert stack is not None
        scaled = model._compute_scaled_values()
        row = scaled[serving.attribute_index[names[0]]]
        nonzero = np.flatnonzero(row)
        return {
            "model": serving.key,
            "attribute": names[0],
            "shape": [stack.n_sources, stack.n_targets],
            "rows": stack.entry_rows[nonzero].tolist(),
            "cols": stack.entry_cols[nonzero].tolist(),
            "values": row[nonzero].tolist(),
        }

    def __repr__(self) -> str:
        state = "draining" if self._draining else (
            "serving" if self._server is not None else "stopped"
        )
        return (
            f"AlignmentServer({self.host}:{self.port}, "
            f"models={len(self._models)}, {state})"
        )
