"""Server-side request metrics: counters, gauges, latency histograms.

The serving loop is single-threaded asyncio, but metrics are read from
other threads too (the CLI's signal handlers, tests polling a server
running in a background thread), so every mutation and snapshot runs
under one lock -- the same discipline ``repro.obs``'s trace registries
follow, and what the deep-lint thread-shared-state rule expects.

Latencies live in fixed-bucket cumulative histograms
(:class:`~repro.obs.promfmt.Histogram`): constant memory under
unbounded traffic, percentile estimates by bucket interpolation, and a
direct mapping onto Prometheus exposition -- which is what
:meth:`ServerMetrics.prometheus_families` produces for the
content-negotiated ``/metrics`` endpoint.  The JSON ``snapshot`` keeps
its historical shape (``counters`` + per-endpoint ``latency`` blocks
with ``count``/``mean_seconds``/``p*_seconds``), with one deliberate
change: an endpoint with *no* observations reports only
``count: 0`` -- a fabricated ``0.0`` percentile is indistinguishable
from a true zero-latency reading.

:class:`LatencyWindow` (the sample-ring predecessor) remains for
harness-side use -- the load benchmark aggregates its own client-side
samples -- but the server no longer stores raw samples.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ValidationError
from repro.obs.promfmt import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricFamily,
    sanitize_metric_name,
)

__all__ = ["LatencyWindow", "ServerMetrics", "percentile"]

#: Percentiles reported by :meth:`LatencyWindow.summary`.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)

#: Prefix every exposed Prometheus metric carries.
PROM_PREFIX = "geoalign"


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    if not samples:
        raise ValidationError("percentile needs at least one sample")
    if not 0.0 < q <= 100.0:
        raise ValidationError(f"percentile q must be in (0, 100], got {q}")
    rank = max(int(len(samples) * q / 100.0 + 0.5), 1)
    return samples[min(rank, len(samples)) - 1]


class LatencyWindow:
    """Bounded ring of raw latencies with summary percentiles.

    Used by harnesses that own their samples client-side; the server's
    own ``/metrics`` path uses histograms instead.
    """

    __slots__ = ("_samples", "count", "total_seconds", "max_seconds")

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValidationError(
                f"latency window capacity must be >= 1, got {capacity}"
            )
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def summary(self) -> dict[str, float]:
        """Count, mean, max, and p50/p95/p99 over the recent window.

        An empty window reports only ``count: 0``: fabricating ``0.0``
        for the mean/max/percentiles would be indistinguishable from a
        genuinely instant request.
        """
        if self.count == 0:
            return {"count": 0.0}
        out: dict[str, float] = {
            "count": float(self.count),
            "mean_seconds": self.total_seconds / self.count,
            "max_seconds": self.max_seconds,
        }
        window = sorted(self._samples)
        for q in REPORTED_PERCENTILES:
            out[f"p{int(q)}_seconds"] = percentile(window, q)
        return out


class ServerMetrics:
    """Lock-guarded counters, gauges and per-endpoint latency histograms."""

    def __init__(
        self, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._buckets = buckets

    def incr(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = Histogram(
                    self._buckets
                )
            histogram.observe(seconds)

    def latency_quantile(self, endpoint: str, q: float) -> float | None:
        """Current ``q``-quantile estimate for ``endpoint`` (``None``
        until the first observation).  The tail sampler reads this
        *before* observing a request to decide whether that request
        lands in the slow tail of the traffic seen so far."""
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                return None
            return histogram.quantile(q)

    def snapshot(self) -> dict[str, object]:
        """Point-in-time copy: counters, gauges, latency summaries."""
        with self._lock:
            snap: dict[str, object] = {
                "counters": dict(self._counters),
                "latency": {
                    endpoint: histogram.summary()
                    for endpoint, histogram in sorted(
                        self._histograms.items()
                    )
                },
            }
            if self._gauges:
                snap["gauges"] = dict(self._gauges)
            return snap

    def prometheus_families(
        self, extra_gauges: dict[str, float] | None = None
    ) -> list[MetricFamily]:
        """The exposition-format view of everything this object holds.

        * counters named ``responses_<code>`` fold into one
          ``geoalign_responses_total`` family with a ``status`` label;
        * other counters become ``geoalign_<name>`` counter families
          (a ``_total`` suffix is preserved, not doubled);
        * gauges (stored + ``extra_gauges``, e.g. the server's live
          ``stack_*``/``health.*`` values) become gauge families;
        * per-endpoint latency histograms fold into one
          ``geoalign_request_seconds`` family with an ``endpoint``
          label.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        if extra_gauges:
            gauges.update(extra_gauges)
        families: list[MetricFamily] = []

        responses = MetricFamily(
            name=f"{PROM_PREFIX}_responses_total",
            kind="counter",
            help="Responses by HTTP status code.",
        )
        for name in sorted(counters):
            if name.startswith("responses_"):
                responses.add(
                    counters[name], (("status", name[len("responses_") :]),)
                )
                continue
            metric = sanitize_metric_name(f"{PROM_PREFIX}_{name}")
            family = MetricFamily(
                name=metric,
                kind="counter",
                help=f"Server counter {name}.",
            )
            family.add(counters[name])
            families.append(family)
        if responses.samples:
            families.append(responses)

        for name in sorted(gauges):
            metric = sanitize_metric_name(f"{PROM_PREFIX}_{name}")
            family = MetricFamily(
                name=metric, kind="gauge", help=f"Server gauge {name}."
            )
            family.add(gauges[name])
            families.append(family)

        latency = MetricFamily(
            name=f"{PROM_PREFIX}_request_seconds",
            kind="histogram",
            help="Request handling latency by endpoint.",
        )
        for endpoint in sorted(histograms):
            latency.samples.extend(
                histograms[endpoint].bucket_samples(
                    latency.name, (("endpoint", endpoint),)
                )
            )
        if latency.samples:
            families.append(latency)
        return families

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ServerMetrics(counters={len(self._counters)}, "
                f"endpoints={len(self._histograms)})"
            )
