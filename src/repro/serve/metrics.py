"""Server-side request metrics: counters plus per-endpoint latencies.

The serving loop is single-threaded asyncio, but metrics are read from
other threads too (the CLI's signal handlers, tests polling a server
running in a background thread), so every mutation and snapshot runs
under one lock -- the same discipline ``repro.obs``'s trace registries
follow, and what the deep-lint thread-shared-state rule expects.

Latencies are kept in a bounded ring per endpoint: the percentiles the
``/metrics`` endpoint and the load harness report are over the most
recent ``capacity`` observations, which is what an operator wants from
a long-running server (current behaviour, not lifetime average), while
``count``/``total_seconds`` still cover the full history.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ValidationError

__all__ = ["LatencyWindow", "ServerMetrics", "percentile"]

#: Percentiles reported by :meth:`LatencyWindow.summary`.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    if not samples:
        raise ValidationError("percentile needs at least one sample")
    if not 0.0 < q <= 100.0:
        raise ValidationError(f"percentile q must be in (0, 100], got {q}")
    rank = max(int(len(samples) * q / 100.0 + 0.5), 1)
    return samples[min(rank, len(samples)) - 1]


class LatencyWindow:
    """Bounded ring of request latencies with summary percentiles."""

    __slots__ = ("_samples", "count", "total_seconds", "max_seconds")

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValidationError(
                f"latency window capacity must be >= 1, got {capacity}"
            )
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def summary(self) -> dict[str, float]:
        """Count, mean, max, and p50/p95/p99 over the recent window."""
        out: dict[str, float] = {
            "count": float(self.count),
            "mean_seconds": (
                self.total_seconds / self.count if self.count else 0.0
            ),
            "max_seconds": self.max_seconds,
        }
        window = sorted(self._samples)
        for q in REPORTED_PERCENTILES:
            key = f"p{int(q)}_seconds"
            out[key] = percentile(window, q) if window else 0.0
        return out


class ServerMetrics:
    """Lock-guarded counters and per-endpoint latency windows."""

    def __init__(self, window_capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._windows: dict[str, LatencyWindow] = {}
        self._window_capacity = window_capacity

    def incr(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            window = self._windows.get(endpoint)
            if window is None:
                window = self._windows[endpoint] = LatencyWindow(
                    self._window_capacity
                )
            window.observe(seconds)

    def snapshot(self) -> dict[str, object]:
        """Point-in-time copy: counters plus latency summaries."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "latency": {
                    endpoint: window.summary()
                    for endpoint, window in sorted(self._windows.items())
                },
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ServerMetrics(counters={len(self._counters)}, "
                f"endpoints={len(self._windows)})"
            )
