"""Alignment-as-a-service: a stdlib-asyncio HTTP/JSON serving layer.

``repro.serve`` turns fitted alignment models into a long-running
service: an :class:`AlignmentServer` holds warm
:class:`~repro.core.batch.BatchAligner` models (loaded from a
:class:`~repro.store.ModelStore` or registered in-process, target
predictions precomputed) and answers ``/predict``, ``/align``,
``/disaggregate``, ``/healthz`` and ``/metrics`` over plain HTTP/1.1
with keep-alive -- no web framework, no extra dependencies, one event
loop.

Every request runs under a ``serve.request`` obs span parented to the
server's root trace, failures come back as the documented JSON error
envelope (``{"error": {"code": ..., "message": ...}}``), and shutdown
drains in-flight requests before closing transports.  The paired
:class:`ServeClient` is the keep-alive test/bench transport, and the
``geoalign-repro serve`` CLI is the operational entry point.  See
``docs/serving.md`` for the endpoint and envelope reference.
"""

from repro.serve.client import ServeClient
from repro.serve.http import (
    REQUEST_HEADER_LIMIT,
    STATUS_PHRASES,
    HttpRequest,
    encode_response,
    read_request,
)
from repro.serve.metrics import LatencyWindow, ServerMetrics, percentile
from repro.serve.sampler import Exemplar, TailSampler
from repro.serve.server import AlignmentServer, ServingModel

__all__ = [
    "AlignmentServer",
    "Exemplar",
    "HttpRequest",
    "LatencyWindow",
    "REQUEST_HEADER_LIMIT",
    "STATUS_PHRASES",
    "ServeClient",
    "ServerMetrics",
    "ServingModel",
    "TailSampler",
    "encode_response",
    "percentile",
    "read_request",
]
