"""Fitted-model persistence (``repro.store``).

The alignment-as-a-service layer (:mod:`repro.serve`) answers queries
from *warm* models: every expensive, attribute-independent piece of a
fitted :class:`~repro.core.batch.BatchAligner` -- the design/Gram pair,
the union-DM sparsity pattern and value stack, the learned weights --
is serialized once and reloaded in milliseconds instead of being
rebuilt per process.  :class:`ModelStore` owns that serialization:

* artifacts are **content-addressed**: the key is a prefix of the same
  SHA-256 content fingerprint family the run registry and
  :class:`~repro.cache.PipelineCache` use, so refitting identical
  inputs lands on the identical artifact;
* the format is **versioned and integrity-checked**: a JSON manifest
  records the format version and the SHA-256 of the ``.npz`` payload,
  and every load re-hashes the payload before trusting it -- a
  truncated or bit-flipped artifact raises a typed
  :class:`~repro.errors.StoreError`, never pickle garbage
  (``numpy.load`` runs with ``allow_pickle=False``);
* saves are **atomic**: payload and manifest are written to temporary
  names and renamed into place, manifest last, so a crashed save never
  leaves a loadable half-artifact.

See ``docs/serving.md`` for the on-disk format.
"""

from repro.store.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    FAULT_ENV,
    read_artifact,
    write_artifact,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    ModelStore,
    StoreEntry,
    default_store_path,
    model_fingerprint,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "DEFAULT_STORE_DIR",
    "FAULT_ENV",
    "ModelStore",
    "StoreEntry",
    "default_store_path",
    "model_fingerprint",
    "read_artifact",
    "write_artifact",
]
