"""The model store: save, list, and warm-load fitted aligners.

:class:`ModelStore` maps a content fingerprint to one artifact
(:mod:`repro.store.artifact`) holding everything a fitted
:class:`~repro.core.batch.BatchAligner` needs to answer ``predict`` /
``disaggregate`` / warm ``align`` queries without refitting:

* the :class:`~repro.core.batch.ReferenceStack` arrays -- design
  matrix, Gram, per-reference scales, raw source vectors, and the
  union-DM sparsity pattern (``values``/``entry_rows``/``entry_cols``),
* the fit outputs -- simplex weights, masks, objectives, names,
* an optional health-verdict snapshot and caller metadata.

Loading reassembles the stack **without** re-running the union-pattern
construction (the piece §4.3 of the paper attributes >90 % of runtime
to): incidence operators are rebuilt in ``O(nnz)`` from the stored
index arrays, and per-reference DMs are materialised from the stored
value rows, so a loaded model is numerically *identical* to the one
saved -- same arrays, same blend arithmetic, predictions matching to
the last bit (the round-trip suite pins 1e-12).

Fingerprints reuse :mod:`repro.cache`'s content hashing, the same
family the run registry keys runs with, so "the model that produced
run X" and "the artifact serving it" share an identity.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any

import numpy as np
from numpy.typing import NDArray
from scipy import sparse

from repro.core.batch import BatchAligner, ReferenceStack
from repro.core.reference import Reference
from repro.core.sparse_stack import SparseDMStack
from repro.errors import NotFittedError, StoreError
from repro.obs.trace import span as _span
from repro.partitions.dm import DisaggregationMatrix
from repro.store.artifact import (
    manifest_path,
    payload_path,
    read_artifact,
    read_manifest,
    write_artifact,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "ModelStore",
    "StoreEntry",
    "default_store_path",
    "model_fingerprint",
]

FloatArray = NDArray[np.float64]

#: Default store location, relative to the working directory (sibling
#: of the run registry's ``.geoalign/registry.jsonl``).
DEFAULT_STORE_DIR = os.path.join(".geoalign", "store")

#: Hex characters of the fingerprint used as the artifact key -- the
#: same prefix length the run registry uses for run ids.
KEY_LENGTH = 12


def default_store_path() -> str:
    """Store root: ``$REPRO_STORE`` or ``.geoalign/store``."""
    return os.environ.get("REPRO_STORE", DEFAULT_STORE_DIR)


def model_fingerprint(model: BatchAligner) -> str:
    """Content fingerprint of one fitted aligner.

    Covers the reference stack (references + normalize flag), the
    solver configuration, the objectives, masks and attribute names --
    everything the fit is a deterministic function of.  The learned
    weights are deliberately *not* hashed: refitting identical inputs
    must land on the identical artifact key, mirroring the run
    registry's "same work, same id" semantics.
    """
    from repro.cache import combine_fingerprints, fingerprint_array

    if (
        model.stack_ is None
        or model.weights_ is None
        or model.objectives_ is None
        or model.masks_ is None
    ):
        raise NotFittedError(
            "model_fingerprint needs a fitted BatchAligner; call fit() first"
        )
    return combine_fingerprints(
        "fitted-model",
        model.stack_.fingerprint(),
        repr(
            (
                model.solver_method,
                bool(model.normalize),
                model.denominator,
            )
        ),
        fingerprint_array(model.objectives_),
        fingerprint_array(model.masks_),
        repr(list(model.attribute_names_ or [])),
    )


@dataclass(frozen=True)
class StoreEntry:
    """One stored model, as described by its manifest (payload unread)."""

    key: str
    fingerprint: str
    created_at: str
    n_attrs: int
    n_references: int
    n_sources: int
    n_targets: int
    nnz: int
    attribute_names: list[str] = field(default_factory=list)
    reference_names: list[str] = field(default_factory=list)
    config: dict[str, object] = field(default_factory=dict)
    health: dict[str, str] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)
    payload_bytes: int = 0

    def summary_line(self) -> str:
        """One listing row: key, shape, attribute count, timestamp."""
        return (
            f"{self.key:>{KEY_LENGTH}s}  "
            f"{self.n_attrs:4d} attrs  "
            f"{self.n_sources:>7,d} x {self.n_targets:<7,d}  "
            f"{self.n_references:2d} refs  "
            f"{self.payload_bytes / 1024:8.1f} KiB  "
            f"{self.created_at}"
        )

    @classmethod
    def from_manifest(cls, manifest: dict[str, object]) -> "StoreEntry":
        shape = manifest.get("shape")
        if not isinstance(shape, dict):
            raise StoreError(
                f"artifact {manifest.get('key')!r}: manifest has no "
                "'shape' mapping"
            )
        config = manifest.get("config")
        health = manifest.get("health")
        meta = manifest.get("meta")
        return cls(
            key=str(manifest["key"]),
            fingerprint=str(manifest["fingerprint"]),
            created_at=str(manifest.get("created_at", "")),
            n_attrs=int(shape["n_attrs"]),  # type: ignore[call-overload]
            n_references=int(shape["n_references"]),  # type: ignore[call-overload]
            n_sources=int(shape["n_sources"]),  # type: ignore[call-overload]
            n_targets=int(shape["n_targets"]),  # type: ignore[call-overload]
            nnz=int(shape["nnz"]),  # type: ignore[call-overload]
            attribute_names=[
                str(name) for name in manifest.get("attribute_names", [])  # type: ignore[union-attr]
            ],
            reference_names=[
                str(name) for name in manifest.get("reference_names", [])  # type: ignore[union-attr]
            ],
            config=dict(config) if isinstance(config, dict) else {},
            health=(
                {str(k): str(v) for k, v in health.items()}
                if isinstance(health, dict)
                else {}
            ),
            meta=dict(meta) if isinstance(meta, dict) else {},
            payload_bytes=int(manifest.get("payload_bytes", 0)),  # type: ignore[arg-type]
        )


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _model_arrays(model: BatchAligner) -> dict[str, NDArray[Any]]:
    """Every array of a fitted model, ready for ``np.savez``.

    The value stack is persisted in its resident representation: CSR
    triplets (``values_data``/``values_indices``/``values_indptr``) for
    sparse-mode stacks -- payload size scales with *stored* entries --
    and the dense ``values`` matrix for aligned/dense stacks.  The
    manifest's ``stack_mode`` records which, so the loader restores the
    exact blend arithmetic that was saved.
    """
    stack = model.stack_
    assert stack is not None
    assert model.weights_ is not None
    assert model.masks_ is not None
    assert model.objectives_ is not None
    arrays: dict[str, NDArray[Any]] = {
        "design": np.ascontiguousarray(stack.design),
        "gram": np.ascontiguousarray(stack.gram),
        "scales": np.ascontiguousarray(stack.scales),
        "source_vectors": np.ascontiguousarray(stack.source_vectors),
        "entry_rows": np.ascontiguousarray(stack.entry_rows),
        "entry_cols": np.ascontiguousarray(stack.entry_cols),
        "weights": np.ascontiguousarray(model.weights_),
        "masks": np.ascontiguousarray(model.masks_),
        "objectives": np.ascontiguousarray(model.objectives_),
        "source_labels": np.asarray(stack.source_labels, dtype=str),
        "target_labels": np.asarray(stack.target_labels, dtype=str),
        "reference_names": np.asarray(
            [ref.name for ref in stack.references], dtype=str
        ),
        "attribute_names": np.asarray(
            model.attribute_names_ or [], dtype=str
        ),
    }
    if stack.dm_stack.mode == "sparse":
        data, indices, indptr = stack.dm_stack.csr_arrays()
        arrays["values_data"] = np.ascontiguousarray(data)
        arrays["values_indices"] = np.ascontiguousarray(indices)
        arrays["values_indptr"] = np.ascontiguousarray(indptr)
    else:
        arrays["values"] = np.ascontiguousarray(stack.values)
    return arrays


def _check_shapes(arrays: dict[str, NDArray[Any]], where: str) -> None:
    """Cross-array consistency beyond the checksum (defence in depth)."""
    k, m = arrays["source_vectors"].shape
    nnz = arrays["entry_rows"].shape[0]
    n_attrs = arrays["weights"].shape[0]
    if "values" in arrays:
        values_ok = arrays["values"].shape == (k, nnz)
        values_msg = "values is not (k, nnz)"
    else:
        data = arrays["values_data"]
        indices = arrays["values_indices"]
        indptr = arrays["values_indptr"]
        values_ok = (
            indptr.shape == (k + 1,)
            and data.shape == indices.shape
            and data.ndim == 1
            and (len(indptr) == 0 or int(indptr[-1]) == len(data))
            and (len(indices) == 0 or int(indices.max()) < nnz)
        )
        values_msg = "sparse value triplets are not a (k, nnz) CSR matrix"
    checks = (
        (arrays["design"].shape == (m, k), "design is not (m, k)"),
        (arrays["gram"].shape == (k, k), "gram is not (k, k)"),
        (arrays["scales"].shape == (k,), "scales is not (k,)"),
        (values_ok, values_msg),
        (
            arrays["entry_rows"].shape == (nnz,)
            and arrays["entry_cols"].shape == (nnz,),
            "entry index arrays do not match nnz",
        ),
        (
            arrays["weights"].shape == (n_attrs, k)
            and arrays["masks"].shape == (n_attrs, k),
            "weights/masks are not (n_attrs, k)",
        ),
        (
            arrays["objectives"].shape == (n_attrs, m),
            "objectives is not (n_attrs, m)",
        ),
        (
            arrays["reference_names"].shape == (k,),
            "reference_names does not cover every reference",
        ),
        (
            arrays["attribute_names"].shape == (n_attrs,),
            "attribute_names does not cover every attribute",
        ),
        (
            len(arrays["source_labels"]) == m,
            "source_labels does not cover every source row",
        ),
    )
    for ok, message in checks:
        if not ok:
            raise StoreError(f"{where}: inconsistent payload ({message})")
    n_targets = len(arrays["target_labels"])
    if nnz and (
        int(arrays["entry_rows"].max()) >= m
        or int(arrays["entry_cols"].max()) >= n_targets
    ):
        raise StoreError(
            f"{where}: inconsistent payload (union entries index "
            "outside the labelled units)"
        )


def _rebuild_stack(
    arrays: dict[str, NDArray[Any]], normalize: bool, stack_mode: str
) -> ReferenceStack:
    """Reassemble a :class:`ReferenceStack` from stored arrays.

    Mirrors :meth:`ReferenceStack.with_references`: the heavyweight
    union-pattern members are adopted as-is into a
    :class:`~repro.core.sparse_stack.SparseDMStack` restored in its
    *saved* storage mode (so the loaded blend arithmetic is bitwise the
    arithmetic that was saved; version-1 artifacts carry no mode and
    load as dense, matching the old engine's BLAS blend), and
    per-reference DMs are materialised from the stored value rows
    (explicit zeros dropped by the DM constructor, restoring each
    reference's original pattern).
    """
    source_labels = [str(s) for s in arrays["source_labels"]]
    target_labels = [str(t) for t in arrays["target_labels"]]
    n_sources = len(source_labels)
    n_targets = len(target_labels)
    entry_rows = arrays["entry_rows"].astype(np.int64)
    entry_cols = arrays["entry_cols"].astype(np.int64)
    if stack_mode == "sparse":
        dm_stack = SparseDMStack.from_stored(
            n_sources,
            n_targets,
            entry_rows,
            entry_cols,
            "sparse",
            data=np.asarray(arrays["values_data"], dtype=float),
            indices=arrays["values_indices"].astype(np.int64),
            ref_indptr=arrays["values_indptr"].astype(np.int64),
        )
    else:
        dm_stack = SparseDMStack.from_stored(
            n_sources,
            n_targets,
            entry_rows,
            entry_cols,
            stack_mode,
            values=np.asarray(arrays["values"], dtype=float),
        )

    references = []
    for i, name in enumerate(arrays["reference_names"]):
        ref_values, positions = dm_stack.ref_entry_values(i)
        dm = DisaggregationMatrix(
            sparse.csr_matrix(
                (
                    ref_values,
                    (entry_rows[positions], entry_cols[positions]),
                ),
                shape=(n_sources, n_targets),
            ),
            source_labels,
            target_labels,
        )
        references.append(
            Reference(str(name), arrays["source_vectors"][i], dm)
        )

    stack = object.__new__(ReferenceStack)
    stack.references = references
    stack.normalize = normalize
    stack.source_labels = source_labels
    stack.target_labels = target_labels
    stack.n_sources = n_sources
    stack.n_targets = n_targets
    stack.design = np.asarray(arrays["design"], dtype=float)
    stack.scales = np.asarray(arrays["scales"], dtype=float)
    stack.gram = np.asarray(arrays["gram"], dtype=float)
    stack.source_vectors = np.asarray(
        arrays["source_vectors"], dtype=float
    )
    stack.dm_stack = dm_stack
    stack.entry_rows = dm_stack.entry_rows
    stack.entry_cols = dm_stack.entry_cols
    stack._fingerprint = None
    return stack


class ModelStore:
    """Content-addressed directory of fitted-model artifacts.

    Parameters
    ----------
    root:
        Store directory (created on first save).  Defaults to
        :func:`default_store_path`.
    """

    def __init__(self, root: str | None = None) -> None:
        self.root = root if root is not None else default_store_path()

    # -- writing --------------------------------------------------------
    def save(
        self,
        model: BatchAligner,
        health: dict[str, str] | None = None,
        meta: dict[str, object] | None = None,
    ) -> StoreEntry:
        """Persist one fitted aligner; returns its :class:`StoreEntry`.

        Saving the same fitted inputs twice overwrites the identical
        artifact in place (the key is content-addressed), so repeat
        saves are idempotent.
        """
        fingerprint = model_fingerprint(model)
        key = fingerprint[:KEY_LENGTH]
        stack = model.stack_
        assert stack is not None
        with _span("store.save", key=key):
            manifest = write_artifact(
                self.root,
                key,
                _model_arrays(model),
                {
                    "fingerprint": fingerprint,
                    "created_at": _utc_now(),
                    "stack_mode": stack.dm_stack.mode,
                    "config": {
                        "solver_method": model.solver_method,
                        "normalize": bool(model.normalize),
                        "denominator": model.denominator,
                    },
                    "shape": {
                        "n_attrs": len(model.attribute_names_ or []),
                        "n_references": stack.n_references,
                        "n_sources": stack.n_sources,
                        "n_targets": stack.n_targets,
                        "nnz": stack.nnz,
                    },
                    "attribute_names": list(model.attribute_names_ or []),
                    "reference_names": [
                        ref.name for ref in stack.references
                    ],
                    "health": dict(health or {}),
                    "meta": dict(meta or {}),
                },
            )
        return StoreEntry.from_manifest(manifest)

    # -- reading --------------------------------------------------------
    def keys(self) -> list[str]:
        """Every artifact key present under the root, sorted."""
        pattern = os.path.join(self.root, "*.manifest.json")
        return sorted(
            os.path.basename(path)[: -len(".manifest.json")]
            for path in glob.glob(pattern)
        )

    def list(self) -> list[StoreEntry]:
        """Entries for every artifact, sorted by key (manifests only)."""
        return [
            StoreEntry.from_manifest(read_manifest(self.root, key))
            for key in self.keys()
        ]

    def resolve(self, prefix: str) -> str:
        """The unique stored key starting with ``prefix``."""
        if not prefix:
            raise StoreError("model key prefix must be non-empty")
        matches = [key for key in self.keys() if key.startswith(prefix)]
        if not matches:
            raise StoreError(
                f"no stored model with key prefix {prefix!r} in {self.root}"
            )
        if len(matches) > 1:
            raise StoreError(
                f"key prefix {prefix!r} is ambiguous in {self.root}: "
                f"{matches}"
            )
        return matches[0]

    def entry(self, prefix: str) -> StoreEntry:
        """The :class:`StoreEntry` under a (unique) key prefix."""
        return StoreEntry.from_manifest(
            read_manifest(self.root, self.resolve(prefix))
        )

    def load(self, prefix: str) -> tuple[BatchAligner, StoreEntry]:
        """Reassemble one stored model: ``(fitted aligner, entry)``.

        The artifact is checksum-verified and shape-checked before any
        array is trusted; the returned aligner is fitted (``predict`` /
        ``predict_dms`` / ``weight_report`` work immediately) and
        numerically identical to the model that was saved.
        """
        key = self.resolve(prefix)
        with _span("store.load", key=key):
            manifest, arrays = read_artifact(self.root, key)
            entry = StoreEntry.from_manifest(manifest)
            _check_shapes(arrays, manifest_path(self.root, key))
            config = entry.config
            model = BatchAligner(
                solver_method=str(config.get("solver_method", "active-set")),
                normalize=bool(config.get("normalize", True)),
                denominator=str(config.get("denominator", "row-sums")),
            )
            model.stack_ = _rebuild_stack(
                arrays,
                model.normalize,
                str(manifest.get("stack_mode", "dense")),
            )
            model.weights_ = np.asarray(arrays["weights"], dtype=float)
            model.masks_ = np.asarray(arrays["masks"], dtype=bool)
            model.objectives_ = np.asarray(
                arrays["objectives"], dtype=float
            )
            model.attribute_names_ = [
                str(name) for name in arrays["attribute_names"]
            ]
        return model, entry

    def delete(self, prefix: str) -> str:
        """Remove one artifact (manifest first); returns the key."""
        key = self.resolve(prefix)
        os.remove(manifest_path(self.root, key))
        payload = payload_path(self.root, key)
        if os.path.exists(payload):
            os.remove(payload)
        return key

    def to_text(self) -> str:
        """Human listing of the store, one row per artifact."""
        entries = self.list()
        if not entries:
            return f"store {self.root}: no models stored"
        lines = [
            f"store {self.root}: {len(entries)} model(s)",
            f"{'key':>{KEY_LENGTH}s}  {'attrs':>10s}  "
            f"{'sources x targets':^17s}  {'refs':>7s}  "
            f"{'payload':>12s}  saved (UTC)",
        ]
        lines.extend(entry.summary_line() for entry in entries)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ModelStore({self.root!r})"
