"""On-disk artifact format: JSON manifest + checksummed ``.npz`` payload.

One stored model is two sibling files under the store root::

    <key>.manifest.json    # version, fingerprint, shapes, payload SHA-256
    <key>.npz              # every array of the fitted model (no pickle)

The manifest is the commit point: it is written (atomically, via
``os.replace``) only after the payload is fully on disk, so a reader
that sees a manifest can expect its payload -- and verifies it anyway,
because the manifest records the payload's SHA-256 and byte length and
:func:`read_artifact` re-hashes before parsing.  Any mismatch, parse
failure, missing array, or format-version skew raises
:class:`~repro.errors.StoreError` with the artifact path in the
message; the numpy layer runs with ``allow_pickle=False`` so a hostile
or mangled payload cannot execute anything.

``REPRO_STORE_FAULT`` is the chaos hook for the fault-injection suite
(the store's analogue of ``REPRO_SHARD_FAULT``): set it to
``truncate-payload``, ``corrupt-payload`` or ``version-skew`` to make
:func:`write_artifact` produce exactly the damaged artifact each test
needs, proving the loader refuses it.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.errors import StoreError

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "SUPPORTED_VERSIONS",
    "FAULT_ENV",
    "manifest_path",
    "payload_path",
    "read_artifact",
    "read_manifest",
    "write_artifact",
]

#: Format marker every manifest must carry.
ARTIFACT_FORMAT = "geoalign-fitted-model"

#: Current artifact format version; bump on any incompatible layout
#: change.  Version 2 adds sparse value stacks: the payload carries CSR
#: triplets (``values_data``/``values_indices``/``values_indptr``) when
#: the manifest's ``stack_mode`` is ``"sparse"``, the dense ``values``
#: matrix otherwise.
ARTIFACT_VERSION = 2

#: Versions :func:`read_manifest` accepts.  Version-1 artifacts (always
#: dense ``values``, no ``stack_mode``) load as dense-mode stacks, whose
#: BLAS blend is the arithmetic the old engine used -- so old artifacts
#: stay bit-exact.  Other versions are rejected with a typed error
#: instead of guessing.
SUPPORTED_VERSIONS = (1, 2)

#: Chaos hook: ``truncate-payload`` | ``corrupt-payload`` |
#: ``version-skew`` makes the next save produce a damaged artifact.
FAULT_ENV = "REPRO_STORE_FAULT"

#: Arrays every payload must contain (missing keys fail the load).
REQUIRED_ARRAYS = (
    "design",
    "gram",
    "scales",
    "source_vectors",
    "entry_rows",
    "entry_cols",
    "weights",
    "masks",
    "objectives",
    "source_labels",
    "target_labels",
    "reference_names",
    "attribute_names",
)

#: Alternative value-stack representations; every payload must carry
#: exactly one of these array groups on top of :data:`REQUIRED_ARRAYS`.
VALUE_ARRAY_GROUPS = (
    ("values",),
    ("values_data", "values_indices", "values_indptr"),
)


def _missing_arrays(arrays: "dict[str, NDArray[Any]] | set[str]") -> list[str]:
    """Required-array inventory; empty when the payload is complete."""
    missing = [name for name in REQUIRED_ARRAYS if name not in arrays]
    if not any(
        all(name in arrays for name in group)
        for group in VALUE_ARRAY_GROUPS
    ):
        missing.append(
            "values (or values_data/values_indices/values_indptr)"
        )
    return missing


def manifest_path(root: str, key: str) -> str:
    """Manifest file path of artifact ``key`` under ``root``."""
    return os.path.join(root, f"{key}.manifest.json")


def payload_path(root: str, key: str) -> str:
    """Payload (npz) file path of artifact ``key`` under ``root``."""
    return os.path.join(root, f"{key}.npz")


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _atomic_write(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp + rename."""
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def _injected_fault() -> str | None:
    return os.environ.get(FAULT_ENV) or None


def write_artifact(
    root: str,
    key: str,
    arrays: dict[str, NDArray[Any]],
    manifest_extra: dict[str, object],
) -> dict[str, object]:
    """Persist one artifact; returns the manifest that was written.

    ``arrays`` must cover :data:`REQUIRED_ARRAYS`; ``manifest_extra``
    carries the caller's descriptive fields (fingerprint, shapes,
    config, health snapshot).  The payload is serialized in memory
    first so its checksum and length land in the manifest, then both
    files are committed atomically, manifest last.
    """
    missing = _missing_arrays(arrays)
    if missing:
        raise StoreError(
            f"artifact {key!r}: payload is missing arrays {missing}"
        )
    os.makedirs(root, exist_ok=True)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    checksum = _sha256(payload)
    version = ARTIFACT_VERSION

    fault = _injected_fault()
    if fault == "truncate-payload":
        payload = payload[: len(payload) // 2]
    elif fault == "corrupt-payload":
        mangled = bytearray(payload)
        mangled[len(mangled) // 2] ^= 0xFF
        payload = bytes(mangled)
    elif fault == "version-skew":
        version = ARTIFACT_VERSION + 1

    manifest: dict[str, object] = {
        "format": ARTIFACT_FORMAT,
        "version": version,
        "key": key,
        "payload": os.path.basename(payload_path(root, key)),
        "payload_sha256": checksum,
        "payload_bytes": len(buffer.getvalue()),
        **manifest_extra,
    }
    _atomic_write(payload_path(root, key), payload)
    _atomic_write(
        manifest_path(root, key),
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
    )
    return manifest


def read_manifest(root: str, key: str) -> dict[str, object]:
    """Parse and structurally validate one manifest (payload untouched)."""
    path = manifest_path(root, key)
    try:
        with open(path, encoding="utf-8") as handle:
            parsed = json.load(handle)
    except FileNotFoundError as exc:
        raise StoreError(f"no artifact manifest at {path}") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"{path}: unreadable manifest ({exc})") from exc
    if not isinstance(parsed, dict):
        raise StoreError(f"{path}: manifest must be a JSON object")
    if parsed.get("format") != ARTIFACT_FORMAT:
        raise StoreError(
            f"{path}: not a {ARTIFACT_FORMAT} manifest "
            f"(format={parsed.get('format')!r})"
        )
    if parsed.get("version") not in SUPPORTED_VERSIONS:
        raise StoreError(
            f"{path}: artifact format version {parsed.get('version')!r} "
            f"is not among the supported versions {SUPPORTED_VERSIONS}; "
            "re-save the model with this build"
        )
    for field in ("key", "payload_sha256", "fingerprint"):
        if not isinstance(parsed.get(field), str) or not parsed[field]:
            raise StoreError(f"{path}: manifest field {field!r} missing")
    return parsed


def read_artifact(
    root: str, key: str
) -> tuple[dict[str, object], dict[str, NDArray[Any]]]:
    """Load and verify one artifact: ``(manifest, arrays)``.

    Verification order: manifest structure and version first, then the
    payload's byte length and SHA-256 against the manifest, and only
    then the numpy parse (``allow_pickle=False``) and required-array
    inventory.  Every failure mode raises :class:`StoreError`.
    """
    manifest = read_manifest(root, key)
    path = payload_path(root, key)
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as exc:
        raise StoreError(f"{path}: unreadable payload ({exc})") from exc
    expected_bytes = manifest.get("payload_bytes")
    if isinstance(expected_bytes, int) and len(payload) != expected_bytes:
        raise StoreError(
            f"{path}: payload is {len(payload)} bytes but the manifest "
            f"recorded {expected_bytes}; the artifact is truncated or "
            "was modified after save"
        )
    if _sha256(payload) != manifest["payload_sha256"]:
        raise StoreError(
            f"{path}: payload checksum does not match the manifest; "
            "the artifact is corrupted"
        )
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as bundle:
            arrays = {name: bundle[name] for name in bundle.files}
    except (OSError, ValueError, zipfile.BadZipFile, KeyError) as exc:
        raise StoreError(f"{path}: payload failed to parse ({exc})") from exc
    missing = _missing_arrays(arrays)
    if missing:
        raise StoreError(f"{path}: payload is missing arrays {missing}")
    return manifest, arrays
